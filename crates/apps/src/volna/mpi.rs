//! The Volna message-passing backend: same owner-compute + redundant
//! exec-halo scheme as Airfoil's (see `airfoil::mpi`), with the
//! shallow-water twist that the CFL timestep is a *global* min-reduction
//! — the implicit synchronization point §6.5 charges the Phi for.
//!
//! Per rank and time step:
//!
//! ```text
//! sim_1 over owned cells
//! phase 1: halo-exchange w → compute_flux/numerical_flux/space_disc/bc
//!          over ALL local edges, dt = allreduce_min, RK_1 over owned
//! phase 2: halo-exchange w1 → flux kernels on w1, RK_2 over owned
//! ```
//!
//! The production path is [`RankState::step_fused_chain`]: the RK2 step
//! recorded as an `ump_lazy` chain whose `w`/`w1` exchanges are
//! non-blocking — `sim_1` and the fused flux group's **interior** blocks
//! run while the messages fly, the exchange completes, and only the
//! ghost-reading **boundary** blocks wait. The CFL Δt merges through a
//! block-ordered fold and the rank-ordered `allreduce_min` inside the
//! flux group's epilogue, before `RK_1` (a later loop of the same chain)
//! consumes it. [`run_mpi_fused`] drives it end to end; the scalar
//! [`RankState::step`] and threaded [`RankState::step_threaded`] remain
//! as references.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ump_color::PlanInputs;
use ump_core::{distribute, ExecPool, LocalMesh, OpDat, PlanCache, Recorder, Scheme, SharedDat};
use ump_fault::FaultInjector;
use ump_lazy::{Chain, ExchangePolicy, LoopDesc, Shape};
use ump_mesh::generators::CoastalCase;
use ump_minimpi::{Comm, ExchangeGuard, PendingExchange, Universe};
use ump_part::{rcb, Partition};
use ump_simd::{Real, VecR};

use crate::resilience::{resilient_loop, ResilientReport};

use super::drivers;
use super::kernels::{bc_flux, compute_flux, numerical_flux, rk_1, rk_2, sim_1, space_disc};
use super::{profile, Volna, CFL, GRAVITY, H_MIN};

/// A rank-local Volna state (geometry-derived dats rebuilt from the
/// local mesh; cell state extracted from the global case).
pub struct RankState<R: Real> {
    /// The rank's mesh piece.
    pub local: LocalMesh,
    /// Halo classification of the rank's executed edges (`true` = reads
    /// a ghost cell; deferred past the exchange in the overlap schedule).
    pub edge_halo: Vec<bool>,
    /// Cell state (owned + ghost).
    pub w: OpDat<R>,
    /// Saved state.
    pub w_old: OpDat<R>,
    /// RK stage state.
    pub w1: OpDat<R>,
    /// Residuals.
    pub res: OpDat<R>,
    /// Cell areas (local geometry).
    pub area: OpDat<R>,
    /// Edge geometry.
    pub egeom: OpDat<R>,
    /// Edge fluxes.
    pub eflux: OpDat<R>,
    /// Boundary-edge geometry.
    pub bgeom: OpDat<R>,
}

impl<R: Real> RankState<R> {
    /// Build a rank's state from the global case and its mesh piece.
    pub fn new(case: &CoastalCase, local: LocalMesh) -> RankState<R> {
        // reuse the single-process constructor on the *local* mesh for
        // all geometry-derived dats, then overwrite the physical state
        // from the global initial condition through the id maps
        let local_case = CoastalCase {
            mesh: local.mesh.clone(),
            bathy_cell: local
                .cell_global
                .iter()
                .map(|&g| case.bathy_cell[g as usize])
                .collect(),
            eta0_cell: local
                .cell_global
                .iter()
                .map(|&g| case.eta0_cell[g as usize])
                .collect(),
        };
        // `from_case_preordered`: the lane-locality pass must not run on
        // a rank-local mesh — `edge_global`, `n_owned_edges` and the
        // halo flags all mirror the distribution's edge order
        let sim = Volna::<R>::from_case_preordered(local_case);
        RankState {
            edge_halo: local.boundary_edges(),
            w: sim.w,
            w_old: sim.w_old,
            w1: sim.w1,
            res: sim.res,
            area: sim.area,
            egeom: sim.egeom,
            eflux: sim.eflux,
            bgeom: sim.bgeom,
            local,
        }
    }

    /// One RK2 step on this rank; returns the globally-agreed Δt.
    pub fn step(&mut self, comm: &Comm, rec: Option<&Recorder>) -> f64 {
        let g = R::from_f64(GRAVITY);
        let h_min = R::from_f64(H_MIN);
        let cfl = R::from_f64(CFL);
        let mesh = &self.local.mesh;
        let n_owned = self.local.n_owned_cells;
        let time = |rec: Option<&Recorder>, name: &str, n: usize, f: &mut dyn FnMut()| match rec {
            Some(r) => r.time(&super::profile(name), R::BYTES, n, f),
            None => f(),
        };

        time(rec, "sim_1", n_owned, &mut || {
            for c in 0..n_owned {
                let (w, w_old) = (&self.w, &mut self.w_old);
                sim_1(w.row(c), w_old.row_mut(c));
            }
        });

        let mut dt = R::INFINITY;
        let mut global_dt = f64::INFINITY;
        for phase in 0..2u64 {
            // refresh ghosts of the state the flux kernels will gather
            if phase == 0 {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w.data, 4, phase);
            } else {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w1.data, 4, phase);
            }
            let state = if phase == 0 { &self.w } else { &self.w1 };
            time(rec, "compute_flux", mesh.n_edges(), &mut || {
                for e in 0..mesh.n_edges() {
                    let c = mesh.edge2cell.row(e);
                    compute_flux(
                        self.egeom.row(e),
                        state.row(c[0] as usize),
                        state.row(c[1] as usize),
                        self.eflux.row_mut(e),
                        g,
                        h_min,
                    );
                }
            });
            if phase == 0 {
                time(rec, "numerical_flux", mesh.n_edges(), &mut || {
                    for e in 0..mesh.n_edges() {
                        let c = mesh.edge2cell.row(e);
                        numerical_flux(
                            self.egeom.row(e),
                            self.eflux.row(e),
                            self.area.row(c[0] as usize)[0],
                            self.area.row(c[1] as usize)[0],
                            &mut dt,
                            cfl,
                        );
                    }
                });
                // the global CFL step: the implicit synchronization point
                global_dt = comm.allreduce_min(dt.to_f64());
            }
            let dt_step = R::from_f64(global_dt);
            time(rec, "space_disc", mesh.n_edges(), &mut || {
                for e in 0..mesh.n_edges() {
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (rl, rr) =
                        crate::airfoil::drivers::two_rows_mut(&mut self.res.data, 4, c0, c1);
                    space_disc(
                        self.egeom.row(e),
                        self.eflux.row(e),
                        state.row(c0),
                        state.row(c1),
                        rl,
                        rr,
                        g,
                    );
                }
            });
            time(rec, "bc_flux", mesh.n_bedges(), &mut || {
                for be in 0..mesh.n_bedges() {
                    let c0 = mesh.bedge2cell.at(be, 0);
                    bc_flux(self.bgeom.row(be), state.row(c0), self.res.row_mut(c0), g);
                }
            });
            let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
            time(rec, rk_name, n_owned, &mut || {
                for c in 0..n_owned {
                    if phase == 0 {
                        let (w_old, res, w1, area) =
                            (&self.w_old, &mut self.res, &mut self.w1, &self.area);
                        rk_1(
                            w_old.row(c),
                            res.row_mut(c),
                            w1.row_mut(c),
                            area.row(c)[0],
                            dt_step,
                        );
                    } else {
                        let (w_old, w1, res, w, area) = (
                            &self.w_old,
                            &self.w1,
                            &mut self.res,
                            &mut self.w,
                            &self.area,
                        );
                        rk_2(
                            w_old.row(c),
                            w1.row(c),
                            res.row_mut(c),
                            w.row_mut(c),
                            area.row(c)[0],
                            dt_step,
                        );
                    }
                }
                // discard ghost increments (owners recompute them)
                for v in &mut self.res.data[n_owned * 4..] {
                    *v = R::ZERO;
                }
            });
        }
        global_dt
    }
}

impl<R: Real> RankState<R> {
    /// One RK2 step with colored-block threading *inside* the rank — the
    /// MPI×threads hybrid configuration (paper §6.5), on the rank's
    /// persistent [`ExecPool`]. Same communication pattern and ghost
    /// discipline as [`RankState::step`]; compute loops run as colored
    /// blocks over the rank-local plans.
    pub fn step_threaded(
        &mut self,
        comm: &Comm,
        cache: &PlanCache,
        pool: &ExecPool,
        block_size: usize,
    ) -> f64 {
        let g = R::from_f64(GRAVITY);
        let h_min = R::from_f64(H_MIN);
        let cfl = R::from_f64(CFL);
        let n_owned = self.local.n_owned_cells;
        let n_edges = self.local.mesh.n_edges();

        let cell_plan = cache.get(
            Scheme::TwoLevel,
            &[],
            &PlanInputs::new(n_owned, vec![], block_size),
        );
        let edge_direct = cache.get(
            Scheme::TwoLevel,
            &[],
            &PlanInputs::new(n_edges, vec![], block_size),
        );
        let edge_colored = cache.get(
            Scheme::TwoLevel,
            &["edge2cell"],
            &PlanInputs::new(n_edges, vec![&self.local.mesh.edge2cell], block_size),
        );

        {
            let (w, w_old) = (&self.w, &mut self.w_old);
            let wo = SharedDat::new(&mut w_old.data);
            pool.colored_blocks(cell_plan.two_level(), 0, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe { sim_1(w.row(c), wo.slice_mut(c * 4, 4)) };
                }
            });
        }

        let mut global_dt = f64::INFINITY;
        for phase in 0..2u64 {
            if phase == 0 {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w.data, 4, phase);
            } else {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w1.data, 4, phase);
            }
            {
                let mesh = &self.local.mesh;
                let state = if phase == 0 { &self.w } else { &self.w1 };
                let (egeom, area) = (&self.egeom, &self.area);
                let ef = SharedDat::new(&mut self.eflux.data);
                pool.colored_blocks(edge_direct.two_level(), 0, |_b, range| {
                    for e in range.start as usize..range.end as usize {
                        let c = mesh.edge2cell.row(e);
                        unsafe {
                            compute_flux(
                                egeom.row(e),
                                state.row(c[0] as usize),
                                state.row(c[1] as usize),
                                ef.slice_mut(e * 4, 4),
                                g,
                                h_min,
                            );
                        }
                    }
                });
                if phase == 0 {
                    let plan = edge_direct.two_level();
                    let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                    {
                        let eflux = &self.eflux;
                        let dts = SharedDat::new(&mut dt_blocks);
                        pool.colored_blocks(plan, 0, |b, range| {
                            let mut local = R::INFINITY;
                            for e in range.start as usize..range.end as usize {
                                let c = mesh.edge2cell.row(e);
                                numerical_flux(
                                    egeom.row(e),
                                    eflux.row(e),
                                    area.row(c[0] as usize)[0],
                                    area.row(c[1] as usize)[0],
                                    &mut local,
                                    cfl,
                                );
                            }
                            unsafe { dts.slice_mut(b, 1)[0] = local };
                        });
                    }
                    // deterministic block-order reduction, then the
                    // global CFL synchronization point
                    let mut dt = R::INFINITY;
                    for v in dt_blocks {
                        dt = dt.min(v);
                    }
                    global_dt = comm.allreduce_min(dt.to_f64());
                }
            }
            let dt_step = R::from_f64(global_dt);
            {
                let mesh = &self.local.mesh;
                let state = if phase == 0 { &self.w } else { &self.w1 };
                let (egeom, eflux) = (&self.egeom, &self.eflux);
                let ress = SharedDat::new(&mut self.res.data);
                pool.colored_blocks(edge_colored.two_level(), 0, |_b, range| {
                    for e in range.start as usize..range.end as usize {
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let (rl, rr) =
                            unsafe { (ress.slice_mut(c0 * 4, 4), ress.slice_mut(c1 * 4, 4)) };
                        space_disc(
                            egeom.row(e),
                            eflux.row(e),
                            state.row(c0),
                            state.row(c1),
                            rl,
                            rr,
                            g,
                        );
                    }
                });
            }
            {
                let state = if phase == 0 { &self.w } else { &self.w1 };
                for be in 0..self.local.mesh.n_bedges() {
                    let c0 = self.local.mesh.bedge2cell.at(be, 0);
                    bc_flux(self.bgeom.row(be), state.row(c0), self.res.row_mut(c0), g);
                }
            }
            {
                let (w_old, area) = (&self.w_old, &self.area);
                let ress = SharedDat::new(&mut self.res.data);
                let w1s = SharedDat::new(&mut self.w1.data);
                let ws = SharedDat::new(&mut self.w.data);
                pool.colored_blocks(cell_plan.two_level(), 0, |_b, range| {
                    for c in range.start as usize..range.end as usize {
                        unsafe {
                            if phase == 0 {
                                rk_1(
                                    w_old.row(c),
                                    ress.slice_mut(c * 4, 4),
                                    w1s.slice_mut(c * 4, 4),
                                    area.row(c)[0],
                                    dt_step,
                                );
                            } else {
                                rk_2(
                                    w_old.row(c),
                                    &*(w1s.slice_mut(c * 4, 4)),
                                    ress.slice_mut(c * 4, 4),
                                    ws.slice_mut(c * 4, 4),
                                    area.row(c)[0],
                                    dt_step,
                                );
                            }
                        }
                    }
                });
            }
            // discard ghost increments (owners recompute them)
            for v in &mut self.res.data[n_owned * 4..] {
                *v = R::ZERO;
            }
        }
        global_dt
    }
}

impl<R: Real> RankState<R> {
    /// One RK2 step as a rank-local **fused chain with halo/compute
    /// overlap** — the distributed production path. Chain structure:
    ///
    /// ```text
    /// exch(w)                            sends posted immediately
    /// sim_1                              owned cells, interior (overlapped)
    /// [compute_flux+numerical_flux+space_disc]
    ///                                    interior blocks → finish(w) → boundary
    ///                                    epilogue: fold Δt blocks, allreduce_min
    /// bc_flux                            serial, owned cells only
    /// RK_1                               owned cells; ghost res zeroed
    /// exch(w1) → [compute_flux+space_disc] → bc_flux → RK_2
    /// ```
    ///
    /// The CFL Δt is the implicit synchronization point §6.5 charges the
    /// Phi for: it merges deterministically (block order within the
    /// rank, rank order across ranks) inside the flux group's epilogue,
    /// before `RK_1` consumes it. Returns the globally-agreed Δt.
    ///
    /// With `guard: Some(_)` the `w`/`w1` exchange finishes route
    /// through the [`ExchangeGuard`] — a missed halo deadline latches a
    /// typed timeout and the step completes on stale ghost data (the
    /// resilient driver rolls it back) instead of blocking forever.
    #[allow(clippy::too_many_arguments)]
    pub fn step_fused_chain<const L: usize>(
        &mut self,
        comm: &Comm,
        cache: &PlanCache,
        pool: &ExecPool,
        shape: Shape,
        block_size: usize,
        policy: ExchangePolicy,
        rec: Option<&Recorder>,
        guard: Option<&ExchangeGuard>,
    ) -> f64 {
        let g = R::from_f64(GRAVITY);
        let h_min = R::from_f64(H_MIN);
        let cfl = R::from_f64(CFL);
        let RankState {
            local,
            edge_halo,
            w,
            w_old,
            w1,
            res,
            area,
            egeom,
            eflux,
            bgeom,
        } = self;
        let mesh = &local.mesh;
        let halo = &local.cell_halo;
        let n_owned = local.n_owned_cells;
        let (area, egeom, bgeom, edge_halo) = (&*area, &*egeom, &*bgeom, &*edge_halo);
        // rank-local dats are always AoS (distribution extracts AoS rows);
        // views captured before the SharedDat borrows below
        let (egv, efv, resv) = (egeom.view(), eflux.view(), res.view());
        let (wv, woldv, w1v) = (w.view(), w_old.view(), w1.view());
        let (ne, nb) = (mesh.n_edges(), mesh.n_bedges());
        let n_edge_blocks = ne.div_ceil(block_size);
        // Δt partials: one slot per edge block, folded (then allreduced)
        // by the flux group's epilogue before RK_1 reads `dt_slot`
        let mut dt_blocks = vec![R::INFINITY; n_edge_blocks];
        let mut dt_slot = vec![f64::INFINITY; 1];
        {
            let ws = SharedDat::new(&mut w.data);
            let wolds = SharedDat::new(&mut w_old.data);
            let w1s = SharedDat::new(&mut w1.data);
            let ress = SharedDat::new(&mut res.data);
            let efs = SharedDat::new(&mut eflux.data);
            let dts = SharedDat::new(&mut dt_blocks);
            let dtf = SharedDat::new(&mut dt_slot);
            let pending: [Mutex<Option<PendingExchange>>; 2] = [Mutex::new(None), Mutex::new(None)];
            let desc = |name: &str, n: usize| LoopDesc::new(profile(name), n);
            // the state the flux kernels gather switches to w1 in the
            // second RK phase — the dependency analyzer must see it
            let state_desc = |name: &str, n: usize, phase: usize| {
                let mut p = profile(name);
                if phase == 1 {
                    for a in &mut p.args {
                        if a.dat == "w" {
                            a.dat = "w1".into();
                        }
                    }
                }
                LoopDesc::new(p, n)
            };

            let mut chain = Chain::new("volna_step");
            // refresh w ghosts for phase 0: posted before sim_1 so the
            // copy loop also hides message latency
            {
                let (ws, slot) = (&ws, &pending[0]);
                chain.record_exchange(
                    "halo[w]",
                    move || {
                        let started = halo.start(comm, unsafe { ws.as_slice() }, 4, 0);
                        *slot.lock().unwrap() = Some(started);
                    },
                    move || {
                        let started = slot.lock().unwrap().take().expect("w exchange started");
                        match guard {
                            Some(g) => {
                                g.finish(started, comm, unsafe { ws.slice_mut(0, ws.len()) })
                            }
                            None => started.finish(comm, unsafe { ws.slice_mut(0, ws.len()) }),
                        }
                    },
                );
            }
            {
                let (ws, wolds) = (&ws, &wolds);
                chain.record_simd(
                    desc("sim_1", n_owned),
                    vec![],
                    L,
                    move |c| unsafe {
                        sim_1(ws.slice(c * 4, 4), wolds.slice_mut(c * 4, 4));
                    },
                    move |cs| unsafe {
                        let src = ws.as_slice();
                        let dst = wolds.slice_mut(0, wolds.len());
                        for i in 0..4 {
                            VecR::<R, L>::load(src, cs * 4 + i * L).store(dst, cs * 4 + i * L);
                        }
                    },
                );
                chain.mark_interior();
            }
            for phase in 0..2 {
                let state = if phase == 0 { &ws } else { &w1s };
                let sv = if phase == 0 { wv } else { w1v };
                if phase == 1 {
                    // refresh w1 ghosts (RK_1 wrote owned rows only)
                    let (w1s, slot) = (&w1s, &pending[1]);
                    chain.record_exchange(
                        "halo[w1]",
                        move || {
                            let started = halo.start(comm, unsafe { w1s.as_slice() }, 4, 1);
                            *slot.lock().unwrap() = Some(started);
                        },
                        move || {
                            let started = slot.lock().unwrap().take().expect("w1 exchange started");
                            match guard {
                                Some(g) => {
                                    g.finish(started, comm, unsafe { w1s.slice_mut(0, w1s.len()) })
                                }
                                None => {
                                    started.finish(comm, unsafe { w1s.slice_mut(0, w1s.len()) })
                                }
                            }
                        },
                    );
                }
                {
                    let efs = &efs;
                    chain.record_simd(
                        state_desc("compute_flux", ne, phase),
                        vec![],
                        L,
                        move |e| {
                            let c = mesh.edge2cell.row(e);
                            unsafe {
                                compute_flux(
                                    egeom.row(e),
                                    state.slice(c[0] as usize * 4, 4),
                                    state.slice(c[1] as usize * 4, 4),
                                    efs.slice_mut(e * 4, 4),
                                    g,
                                    h_min,
                                );
                            }
                        },
                        move |es| unsafe {
                            drivers::compute_flux_chunk::<R, L>(
                                es,
                                &mesh.edge2cell.data,
                                &egeom.data,
                                egv,
                                state.as_slice(),
                                sv,
                                efs.slice_mut(0, efs.len()),
                                efv,
                                g,
                                h_min,
                            );
                        },
                    );
                    chain.mark_boundary(edge_halo);
                }
                if phase == 0 {
                    {
                        let (efs, dts) = (&efs, &dts);
                        if let Shape::Simd { .. } = shape {
                            chain.record_simd(
                                desc("numerical_flux", ne),
                                vec![],
                                L,
                                move |e| {
                                    let c = mesh.edge2cell.row(e);
                                    unsafe {
                                        let slot = &mut dts.slice_mut(e / block_size, 1)[0];
                                        numerical_flux(
                                            egeom.row(e),
                                            efs.slice(e * 4, 4),
                                            area.row(c[0] as usize)[0],
                                            area.row(c[1] as usize)[0],
                                            slot,
                                            cfl,
                                        );
                                    }
                                },
                                move |es| unsafe {
                                    let mut dt_v = VecR::<R, L>::splat(R::INFINITY);
                                    drivers::numerical_flux_chunk::<R, L>(
                                        es,
                                        &mesh.edge2cell.data,
                                        efs.as_slice(),
                                        efv,
                                        &area.data,
                                        &mut dt_v,
                                        cfl,
                                    );
                                    let slot = &mut dts.slice_mut(es / block_size, 1)[0];
                                    *slot = slot.min(dt_v.reduce_min());
                                },
                            );
                        } else {
                            chain.record_blocks(
                                desc("numerical_flux", ne),
                                vec![],
                                move |b, range| {
                                    let mut local = R::INFINITY;
                                    for e in range.start as usize..range.end as usize {
                                        let c = mesh.edge2cell.row(e);
                                        unsafe {
                                            numerical_flux(
                                                egeom.row(e),
                                                efs.slice(e * 4, 4),
                                                area.row(c[0] as usize)[0],
                                                area.row(c[1] as usize)[0],
                                                &mut local,
                                                cfl,
                                            );
                                        }
                                    }
                                    unsafe { dts.slice_mut(b, 1)[0] = local };
                                },
                            );
                        }
                        // numerical_flux reads edge-local flux and the
                        // rank-local cell areas — no halo data
                        chain.mark_interior();
                    }
                    {
                        // fold the Δt partials, then the global CFL
                        // agreement — the rank-ordered min-allreduce, the
                        // step's implicit synchronization point
                        let (dts, dtf) = (&dts, &dtf);
                        chain.epilogue(move || unsafe {
                            let mut merged = R::INFINITY;
                            for &v in dts.slice(0, dts.len()) {
                                merged = if v < merged { v } else { merged };
                            }
                            dtf.slice_mut(0, 1)[0] = comm.allreduce_min(merged.to_f64());
                        });
                    }
                }
                {
                    let (efs, ress) = (&efs, &ress);
                    chain.record_simd_two_phase(
                        state_desc("space_disc", ne, phase),
                        vec![&mesh.edge2cell],
                        L,
                        move |e| {
                            let c = mesh.edge2cell.row(e);
                            let (c0, c1) = (c[0] as usize, c[1] as usize);
                            let mut rl = [R::ZERO; 4];
                            let mut rr = [R::ZERO; 4];
                            unsafe {
                                space_disc(
                                    egeom.row(e),
                                    efs.slice(e * 4, 4),
                                    state.slice(c0 * 4, 4),
                                    state.slice(c1 * 4, 4),
                                    &mut rl,
                                    &mut rr,
                                    g,
                                );
                            }
                            (c0, rl, c1, rr)
                        },
                        move |_e, inc| unsafe { ump_core::apply_edge_inc(ress, inc) },
                        move |es| unsafe {
                            drivers::space_disc_chunk::<R, L>(
                                es,
                                &mesh.edge2cell.data,
                                &egeom.data,
                                egv,
                                efs.as_slice(),
                                efv,
                                state.as_slice(),
                                sv,
                                ress.slice_mut(0, ress.len()),
                                resv,
                                g,
                            );
                        },
                    );
                    chain.mark_boundary(edge_halo);
                }
                {
                    let ress = &ress;
                    chain.record_seq(state_desc("bc_flux", nb, phase), move || {
                        for be in 0..nb {
                            let c0 = mesh.bedge2cell.at(be, 0);
                            unsafe {
                                bc_flux(
                                    bgeom.row(be),
                                    state.slice(c0 * 4, 4),
                                    ress.slice_mut(c0 * 4, 4),
                                    g,
                                );
                            }
                        }
                    });
                    // bedges map to owned cells only
                    chain.mark_interior();
                }
                if phase == 0 {
                    let (wolds, w1s, ress, dtf) = (&wolds, &w1s, &ress, &dtf);
                    chain.record_simd(
                        desc("RK_1", n_owned),
                        vec![],
                        L,
                        move |c| unsafe {
                            let dt = R::from_f64(dtf.slice(0, 1)[0]);
                            rk_1(
                                wolds.slice(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                w1s.slice_mut(c * 4, 4),
                                area.row(c)[0],
                                dt,
                            );
                        },
                        move |cs| unsafe {
                            let dt = R::from_f64(dtf.slice(0, 1)[0]);
                            drivers::rk1_chunk::<R, L>(
                                cs,
                                wolds.as_slice(),
                                woldv,
                                ress.slice_mut(0, ress.len()),
                                resv,
                                w1s.slice_mut(0, w1s.len()),
                                w1v,
                                &area.data,
                                dt,
                            );
                        },
                    );
                    chain.mark_interior();
                } else {
                    let (wolds, w1s, ress, ws, dtf) = (&wolds, &w1s, &ress, &ws, &dtf);
                    chain.record_simd(
                        desc("RK_2", n_owned),
                        vec![],
                        L,
                        move |c| unsafe {
                            let dt = R::from_f64(dtf.slice(0, 1)[0]);
                            rk_2(
                                wolds.slice(c * 4, 4),
                                w1s.slice(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                ws.slice_mut(c * 4, 4),
                                area.row(c)[0],
                                dt,
                            );
                        },
                        move |cs| unsafe {
                            let dt = R::from_f64(dtf.slice(0, 1)[0]);
                            drivers::rk2_chunk::<R, L>(
                                cs,
                                wolds.as_slice(),
                                woldv,
                                w1s.as_slice(),
                                w1v,
                                ress.slice_mut(0, ress.len()),
                                resv,
                                ws.slice_mut(0, ws.len()),
                                wv,
                                &area.data,
                                dt,
                            );
                        },
                    );
                    chain.mark_interior();
                }
                {
                    // discard ghost increments (owners recompute them)
                    let ress = &ress;
                    chain.epilogue(move || unsafe {
                        for v in ress.slice_mut(n_owned * 4, ress.len() - n_owned * 4) {
                            *v = R::ZERO;
                        }
                    });
                }
            }
            chain.execute_policy(pool, cache, shape, 0, block_size, R::BYTES, rec, policy);
        }
        dt_slot[0]
    }
}

/// Run the distributed fused backend end to end: `n_ranks` ranks, each
/// stepping the rank-local fused chain with halo/compute overlap (or
/// blocking exchanges). `shape` selects the per-rank execution shape.
/// Returns the assembled global state and the Δt history.
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_fused<R: Real, const L: usize>(
    case: &CoastalCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    steps: usize,
    shape: Shape,
    policy: ExchangePolicy,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    run_mpi_fused_with_partition::<R, L>(
        case,
        &partition,
        threads_per_rank,
        block_size,
        steps,
        shape,
        policy,
    )
}

/// As [`run_mpi_fused`] with an explicit partition (ragged-ownership
/// tests).
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_fused_with_partition<R: Real, const L: usize>(
    case: &CoastalCase,
    partition: &Partition,
    threads_per_rank: usize,
    block_size: usize,
    steps: usize,
    shape: Shape,
    policy: ExchangePolicy,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let locals = distribute(mesh, partition);
    let total_cells = mesh.n_cells();
    let n_ranks = partition.n_parts as usize;

    let results =
        Universe::new(n_ranks).run(|comm| {
            let cache = PlanCache::new();
            let pool = ExecPool::new(threads_per_rank);
            let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
            let mut history = Vec::with_capacity(steps);
            for _ in 0..steps {
                history.push(state.step_fused_chain::<L>(
                    comm, &cache, &pool, shape, block_size, policy, None, None,
                ));
            }
            (
                state.w.data,
                state.local.cell_global.clone(),
                state.local.n_owned_cells,
                history,
            )
        });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let w = OpDat::from_vec(
        "w",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (w, history)
}

impl<R: Real> RankState<R> {
    /// Serialize the rank's evolving dats (`w`, `w_old`, `w1`, `res`,
    /// `eflux`) as exact bit patterns — the rank-level
    /// coordinated-checkpoint payload. Geometry (`area`, `egeom`,
    /// `bgeom`) is a deterministic function of the case and partition
    /// and is rebuilt on restart.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.w.data.len() * 4 + self.eflux.data.len()) * 8 + 320);
        for dat in [&self.w, &self.w_old, &self.w1, &self.res, &self.eflux] {
            dat.save(&mut out).expect("Vec<u8> writes are infallible");
        }
        out
    }

    /// Restore the evolving dats from [`RankState::snapshot`] bytes.
    /// All-or-nothing: the state is untouched unless every dat decodes
    /// and matches this rank's shape (typed error, never a panic).
    pub fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut r = bytes;
        let mut loaded = Vec::with_capacity(5);
        for dat in [&self.w, &self.w_old, &self.w1, &self.res, &self.eflux] {
            let got = OpDat::<R>::load(&mut r)?;
            if got.set_size != dat.set_size || got.dim != dat.dim {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "snapshot dat {} is {}x{}, rank expects {}x{}",
                        got.name, got.set_size, got.dim, dat.set_size, dat.dim
                    ),
                ));
            }
            loaded.push(got.data);
        }
        let mut it = loaded.into_iter();
        self.w.data = it.next().unwrap();
        self.w_old.data = it.next().unwrap();
        self.w1.data = it.next().unwrap();
        self.res.data = it.next().unwrap();
        self.eflux.data = it.next().unwrap();
        Ok(())
    }
}

/// As [`run_mpi_fused`], but fault-tolerant: coordinated per-rank
/// checkpoints every `checkpoint_every` steps (0 = initial state only)
/// plus the health-vote/rollback protocol of [`resilient_loop`].
/// `injector` supplies deterministic faults; `io_timeout` bounds every
/// halo wait via an [`ExchangeGuard`]. Under any injected plan the
/// returned state and Δt history are bit-identical to a fault-free run.
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_fused_resilient<R: Real, const L: usize>(
    case: &CoastalCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    steps: usize,
    shape: Shape,
    policy: ExchangePolicy,
    checkpoint_every: usize,
    injector: Option<Arc<FaultInjector>>,
    io_timeout: Duration,
) -> (OpDat<R>, Vec<f64>, ResilientReport) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let mut universe = Universe::new(n_ranks);
    if let Some(inj) = injector.clone() {
        universe = universe.with_fault(inj);
    }
    let results = universe.run(|comm| {
        let cache = PlanCache::new();
        let pool = ExecPool::new(threads_per_rank);
        let guard = ExchangeGuard::new(io_timeout);
        let local = locals[comm.rank()].clone();
        let mut state = RankState::<R>::new(case, local.clone());
        let (history, report) = resilient_loop(
            comm,
            &guard,
            injector.as_ref(),
            steps,
            checkpoint_every,
            &mut state,
            || RankState::<R>::new(case, local.clone()),
            |st| st.snapshot(),
            |st, bytes| st.restore(bytes).expect("rank checkpoint restore"),
            |st, g| {
                st.step_fused_chain::<L>(
                    comm,
                    &cache,
                    &pool,
                    shape,
                    block_size,
                    policy,
                    None,
                    Some(g),
                )
            },
        );
        (
            state.w.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
            report,
        )
    });

    let history = results[0].3.clone();
    let mut report = ResilientReport::default();
    for (_, _, _, _, r) in &results {
        report.merge(r);
    }
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let w = OpDat::from_vec(
        "w",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (w, history, report)
}

/// Initialize a rank state from a *mid-simulation* global state (the
/// inverse of the owned-row assembly).
pub fn rank_state_from_global<R: Real>(
    case: &CoastalCase,
    local: LocalMesh,
    global: &Volna<R>,
) -> RankState<R> {
    use ump_core::extract_rows;
    let mut st = RankState::<R>::new(case, local);
    st.w.data = extract_rows(&global.w.data, 4, &st.local.cell_global);
    st.w_old.data = extract_rows(&global.w_old.data, 4, &st.local.cell_global);
    st.w1.data = extract_rows(&global.w1.data, 4, &st.local.cell_global);
    st.res.data = extract_rows(&global.res.data, 4, &st.local.cell_global);
    st
}

/// One rank's returned state dats: (w, w_old, w1, res).
type RankDats<R> = (Vec<R>, Vec<R>, Vec<R>, Vec<R>);

/// One distributed fused RK2 step on a *global* simulation state — the
/// `step_on` entry point behind `Backend::MpiFused*`. Distributes,
/// steps every rank's overlapped fused chain once, assembles the state
/// back; consecutive calls continue the simulation exactly like a
/// persistent universe. Returns the globally-agreed Δt.
pub fn step_mpi_fused<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    n_ranks: usize,
    block_size: usize,
    shape: Shape,
    rec: Option<&Recorder>,
) -> f64 {
    let mesh = &sim.case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = {
        let sim = &*sim;
        Universe::new(n_ranks).run(|comm| {
            let cache = PlanCache::new();
            let pool = ExecPool::new(2);
            let mut st = rank_state_from_global(&sim.case, locals[comm.rank()].clone(), sim);
            let dt = st.step_fused_chain::<L>(
                comm,
                &cache,
                &pool,
                shape,
                block_size,
                ExchangePolicy::Overlap,
                rec,
                None,
            );
            (
                (st.w.data, st.w_old.data, st.w1.data, st.res.data),
                st.local.cell_global.clone(),
                st.local.n_owned_cells,
                dt,
            )
        })
    };

    let assemble = |pick: &dyn Fn(&RankDats<R>) -> &[R]| {
        let parts: Vec<(&[R], &[u32], usize)> = results
            .iter()
            .map(|(dats, ids, n_owned, _)| (pick(dats), ids.as_slice(), *n_owned))
            .collect();
        ump_core::dist::assemble_owned(&parts, total_cells, 4)
    };
    sim.w.data = assemble(&|d| &d.0);
    sim.w_old.data = assemble(&|d| &d.1);
    sim.w1.data = assemble(&|d| &d.2);
    sim.res.data = assemble(&|d| &d.3);
    results[0].3
}

/// Run `steps` RK2 steps of Volna across `n_ranks` message-passing
/// ranks; returns the assembled global state and the Δt history.
pub fn run_mpi<R: Real>(
    case: &CoastalCase,
    n_ranks: usize,
    steps: usize,
    rec: Option<&Recorder>,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = Universe::new(n_ranks).run(|comm| {
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            history.push(state.step(comm, rec));
        }
        (
            state.w.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let w = OpDat::from_vec(
        "w",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (w, history)
}

/// Run the MPI×threads hybrid backend end to end: `n_ranks` ranks, each
/// with a persistent `threads_per_rank`-member [`ExecPool`] created once
/// and reused across all `steps` RK2 steps.
pub fn run_mpi_threaded<R: Real>(
    case: &CoastalCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    steps: usize,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = Universe::new(n_ranks).run(|comm| {
        let cache = PlanCache::new();
        let pool = ExecPool::new(threads_per_rank);
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            history.push(state.step_threaded(comm, &cache, &pool, block_size));
        }
        (
            state.w.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let w = OpDat::from_vec(
        "w",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (w, history)
}
