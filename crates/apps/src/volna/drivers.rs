//! The Volna loop drivers (one `step_*` = one RK2 time step; returns the
//! CFL Δt used). Backend shapes mirror the Airfoil drivers; the paper
//! benchmarks Volna in single precision through the same MPI / OpenMP /
//! OpenCL / intrinsics configurations.

use ump_color::PlanInputs;
use ump_core::{
    apply_edge_inc, global_pool_cap, seq_loop, ExecPool, PlanCache, Recorder, Scheme, SharedDat,
    SharedMut,
};
use ump_lazy::{Chain, LoopDesc, Shape};
use ump_simd::{split_sweep, IdxVec, Real, VecR};

use super::kernels::{bc_flux, compute_flux, numerical_flux, rk_1, rk_2, sim_1, space_disc};
use super::kernels_vec::{
    compute_flux_vec, numerical_flux_vec, rk_1_vec, rk_2_vec, space_disc_vec,
};
use super::{profile, Volna, CFL, GRAVITY, H_MIN};

fn maybe_time<T>(
    rec: Option<&Recorder>,
    name: &str,
    word_bytes: usize,
    n_elems: usize,
    f: impl FnOnce() -> T,
) -> T {
    match rec {
        Some(r) => r.time(&profile(name), word_bytes, n_elems, f),
        None => f(),
    }
}

#[inline(always)]
fn two_rows_mut<R>(data: &mut [R], dim: usize, i: usize, j: usize) -> (&mut [R], &mut [R]) {
    crate::airfoil::drivers::two_rows_mut(data, dim, i, j)
}

// ---------------------------------------------------------------------------
// sequential reference
// ---------------------------------------------------------------------------

/// One RK2 step, scalar sequential. Returns Δt.
pub fn step_seq<R: Real>(sim: &mut Volna<R>, rec: Option<&Recorder>) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        seq_loop(0..nc, |c| sim_1(w.row(c), w_old.row_mut(c)));
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            let eflux = &mut sim.eflux;
            seq_loop(0..ne, |e| {
                let c = mesh.edge2cell.row(e);
                compute_flux(
                    sim.egeom.row(e),
                    state.row(c[0] as usize),
                    state.row(c[1] as usize),
                    eflux.row_mut(e),
                    g,
                    h_min,
                );
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                seq_loop(0..ne, |e| {
                    let c = mesh.edge2cell.row(e);
                    numerical_flux(
                        sim.egeom.row(e),
                        sim.eflux.row(e),
                        sim.area.row(c[0] as usize)[0],
                        sim.area.row(c[1] as usize)[0],
                        &mut dt,
                        cfl,
                    );
                });
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let res = &mut sim.res;
            seq_loop(0..ne, |e| {
                let c = mesh.edge2cell.row(e);
                let (c0, c1) = (c[0] as usize, c[1] as usize);
                let (rl, rr) = two_rows_mut(&mut res.data, 4, c0, c1);
                space_disc(
                    sim.egeom.row(e),
                    sim.eflux.row(e),
                    state.row(c0),
                    state.row(c1),
                    rl,
                    rr,
                    g,
                );
            });
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            let res = &mut sim.res;
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), res.row_mut(c0), g);
            });
        });
        if phase == 0 {
            maybe_time(rec, "RK_1", wb, nc, || {
                let (w_old, res, w1, area) = (&sim.w_old, &mut sim.res, &mut sim.w1, &sim.area);
                seq_loop(0..nc, |c| {
                    rk_1(
                        w_old.row(c),
                        res.row_mut(c),
                        w1.row_mut(c),
                        area.row(c)[0],
                        dt,
                    );
                });
            });
        } else {
            maybe_time(rec, "RK_2", wb, nc, || {
                let (w_old, w1, res, w, area) =
                    (&sim.w_old, &sim.w1, &mut sim.res, &mut sim.w, &sim.area);
                seq_loop(0..nc, |c| {
                    rk_2(
                        w_old.row(c),
                        w1.row(c),
                        res.row_mut(c),
                        w.row_mut(c),
                        area.row(c)[0],
                        dt,
                    );
                });
            });
        }
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// threaded (OpenMP-analogue)
// ---------------------------------------------------------------------------

/// One RK2 step with colored-block threading on the process-wide
/// [`ExecPool`], capped at `n_threads` team members (`0` = all).
pub fn step_threaded<R: Real>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_threaded_on(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// One RK2 step with colored-block threading on an explicit pool.
pub fn step_threaded_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_direct = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(ne, vec![], block_size),
    );
    let edge_colored = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
    );

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        let wo = SharedDat::new(&mut w_old.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            for c in range.start as usize..range.end as usize {
                unsafe { sim_1(w.row(c), wo.slice_mut(c * 4, 4)) };
            }
        });
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            let ef = SharedDat::new(&mut sim.eflux.data);
            pool.colored_blocks(edge_direct.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        compute_flux(
                            sim.egeom.row(e),
                            state.row(c[0] as usize),
                            state.row(c[1] as usize),
                            ef.slice_mut(e * 4, 4),
                            g,
                            h_min,
                        );
                    }
                }
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let plan = edge_direct.two_level();
                let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                {
                    let dts = SharedDat::new(&mut dt_blocks);
                    pool.colored_blocks(plan, n_threads, |b, range| {
                        let mut local = R::INFINITY;
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            numerical_flux(
                                sim.egeom.row(e),
                                sim.eflux.row(e),
                                sim.area.row(c[0] as usize)[0],
                                sim.area.row(c[1] as usize)[0],
                                &mut local,
                                cfl,
                            );
                        }
                        unsafe { dts.slice_mut(b, 1)[0] = local };
                    });
                }
                for v in dt_blocks {
                    dt = dt.min(v);
                }
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let ress = SharedDat::new(&mut sim.res.data);
            pool.colored_blocks(edge_colored.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (rl, rr) =
                        unsafe { (ress.slice_mut(c0 * 4, 4), ress.slice_mut(c1 * 4, 4)) };
                    space_disc(
                        sim.egeom.row(e),
                        sim.eflux.row(e),
                        state.row(c0),
                        state.row(c1),
                        rl,
                        rr,
                        g,
                    );
                }
            });
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            let res = &mut sim.res;
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), res.row_mut(c0), g);
            });
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            let (w_old, w1, res, w, area) = (
                &sim.w_old,
                SharedMut::new(&mut sim.w1),
                SharedMut::new(&mut sim.res),
                SharedMut::new(&mut sim.w),
                &sim.area,
            );
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe {
                        if phase == 0 {
                            rk_1(
                                w_old.row(c),
                                res.get_mut().row_mut(c),
                                w1.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        } else {
                            rk_2(
                                w_old.row(c),
                                w1.get_mut().row(c),
                                res.get_mut().row_mut(c),
                                w.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        }
                    }
                }
            });
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// explicit SIMD (single thread)
// ---------------------------------------------------------------------------

/// One RK2 step, explicitly vectorized at `L` lanes (the paper's
/// single-precision Volna vector configurations).
pub fn step_simd<R: Real, const L: usize>(sim: &mut Volna<R>, rec: Option<&Recorder>) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
    let e2c = &mesh.edge2cell.data;

    maybe_time(rec, "sim_1", wb, nc, || {
        let flat = nc * 4;
        let sweep = split_sweep(0..flat, L, 0);
        for i in sweep.scalar_items() {
            sim.w_old.data[i] = sim.w.data[i];
        }
        for i in sweep.vector_chunks() {
            VecR::<R, L>::load(&sim.w.data, i).store(&mut sim.w_old.data, i);
        }
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            let sweep = split_sweep(0..ne, L, 0);
            for e in sweep.scalar_items() {
                let c = mesh.edge2cell.row(e);
                compute_flux(
                    sim.egeom.row(e),
                    state.row(c[0] as usize),
                    state.row(c[1] as usize),
                    sim.eflux.row_mut(e),
                    g,
                    h_min,
                );
            }
            for es in sweep.vector_chunks() {
                let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
                let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
                let geom: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::load_strided(&sim.egeom.data, es * 4 + d, 4));
                let wl: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::gather(&state.data, c0, 4, d));
                let wr: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::gather(&state.data, c1, 4, d));
                let f = compute_flux_vec(&geom, &wl, &wr, g, h_min);
                for d in 0..4 {
                    f[d].store_strided(&mut sim.eflux.data, es * 4 + d, 4);
                }
            }
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let sweep = split_sweep(0..ne, L, 0);
                let mut dt_v = VecR::<R, L>::splat(R::INFINITY);
                for e in sweep.scalar_items() {
                    let c = mesh.edge2cell.row(e);
                    numerical_flux(
                        sim.egeom.row(e),
                        sim.eflux.row(e),
                        sim.area.row(c[0] as usize)[0],
                        sim.area.row(c[1] as usize)[0],
                        &mut dt,
                        cfl,
                    );
                }
                for es in sweep.vector_chunks() {
                    let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
                    let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
                    let lam = VecR::<R, L>::load_strided(&sim.eflux.data, es * 4 + 3, 4);
                    let al = VecR::gather(&sim.area.data, c0, 1, 0);
                    let ar = VecR::gather(&sim.area.data, c1, 1, 0);
                    numerical_flux_vec(lam, al, ar, &mut dt_v, cfl);
                }
                dt = dt.min(dt_v.reduce_min());
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let sweep = split_sweep(0..ne, L, 0);
            for e in sweep.scalar_items() {
                let c = mesh.edge2cell.row(e);
                let (c0, c1) = (c[0] as usize, c[1] as usize);
                let (rl, rr) = two_rows_mut(&mut sim.res.data, 4, c0, c1);
                space_disc(
                    sim.egeom.row(e),
                    sim.eflux.row(e),
                    state.row(c0),
                    state.row(c1),
                    rl,
                    rr,
                    g,
                );
            }
            for es in sweep.vector_chunks() {
                let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
                let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
                let geom: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::load_strided(&sim.egeom.data, es * 4 + d, 4));
                let ef: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::load_strided(&sim.eflux.data, es * 4 + d, 4));
                let wl: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::gather(&state.data, c0, 4, d));
                let wr: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::gather(&state.data, c1, 4, d));
                let (rl, rr) = space_disc_vec(&geom, &ef, &wl, &wr, g);
                for d in 0..3 {
                    rl[d].scatter_add_serial(&mut sim.res.data, c0, 4, d);
                    rr[d].scatter_add_serial(&mut sim.res.data, c1, 4, d);
                }
            }
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), sim.res.row_mut(c0), g);
            });
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            let sweep = split_sweep(0..nc, L, 0);
            for c in sweep.scalar_items() {
                if phase == 0 {
                    let (w_old, res, w1, area) = (&sim.w_old, &mut sim.res, &mut sim.w1, &sim.area);
                    rk_1(
                        w_old.row(c),
                        res.row_mut(c),
                        w1.row_mut(c),
                        area.row(c)[0],
                        dt,
                    );
                } else {
                    let (w_old, w1, res, w, area) =
                        (&sim.w_old, &sim.w1, &mut sim.res, &mut sim.w, &sim.area);
                    rk_2(
                        w_old.row(c),
                        w1.row(c),
                        res.row_mut(c),
                        w.row_mut(c),
                        area.row(c)[0],
                        dt,
                    );
                }
            }
            for cs in sweep.vector_chunks() {
                let w_old: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::load_strided(&sim.w_old.data, cs * 4 + d, 4));
                let mut res: [VecR<R, L>; 4] =
                    std::array::from_fn(|d| VecR::load_strided(&sim.res.data, cs * 4 + d, 4));
                let area = VecR::<R, L>::load(&sim.area.data, cs);
                if phase == 0 {
                    let mut w1 = [VecR::<R, L>::zero(); 4];
                    rk_1_vec(&w_old, &mut res, &mut w1, area, dt);
                    for d in 0..4 {
                        w1[d].store_strided(&mut sim.w1.data, cs * 4 + d, 4);
                        res[d].store_strided(&mut sim.res.data, cs * 4 + d, 4);
                    }
                } else {
                    let w1: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::load_strided(&sim.w1.data, cs * 4 + d, 4));
                    let mut w = [VecR::<R, L>::zero(); 4];
                    rk_2_vec(&w_old, &w1, &mut res, &mut w, area, dt);
                    for d in 0..4 {
                        w[d].store_strided(&mut sim.w.data, cs * 4 + d, 4);
                        res[d].store_strided(&mut sim.res.data, cs * 4 + d, 4);
                    }
                }
            }
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// fused loop chains — the ump_lazy deferred-execution backend
// ---------------------------------------------------------------------------

/// One RK2 step recorded as an `ump_lazy` loop chain and executed with
/// cross-loop fusion on the process-wide [`ExecPool`] (threaded shape,
/// `n_threads` team members, `0` = all). Returns Δt.
///
/// The three edge loops of phase 0 (`compute_flux`, `numerical_flux`,
/// `space_disc`) fuse into a single colored dispatch — their
/// dependencies are direct (the per-edge flux pack) — and phase 1 fuses
/// `compute_flux+space_disc`; the Δt reduction is merged by an epilogue
/// before `RK_1` consumes it. Three dispatch rounds fewer per step than
/// [`step_threaded`], with the edge working set streamed once per group.
pub fn step_fused<R: Real>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_fused_on(
        ExecPool::global(),
        sim,
        cache,
        Shape::Threaded,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_fused`] on an explicit pool and execution shape.
pub fn step_fused_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    shape: Shape,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let Volna {
        case,
        w,
        w_old,
        w1,
        res,
        area,
        egeom,
        eflux,
        bgeom,
    } = sim;
    let mesh = &case.mesh;
    let (area, egeom, bgeom) = (&*area, &*egeom, &*bgeom);
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());
    let n_edge_blocks = ne.div_ceil(block_size);
    // Δt partials: one slot per edge block, folded by an epilogue into
    // `dt_slot` before RK_1 (a later loop of the same chain) reads it
    let mut dt_blocks = vec![R::INFINITY; n_edge_blocks];
    let mut dt_slot = vec![R::INFINITY; 1];
    {
        let ws = SharedDat::new(&mut w.data);
        let wolds = SharedDat::new(&mut w_old.data);
        let w1s = SharedDat::new(&mut w1.data);
        let ress = SharedDat::new(&mut res.data);
        let efs = SharedDat::new(&mut eflux.data);
        let dts = SharedDat::new(&mut dt_blocks);
        let dtf = SharedDat::new(&mut dt_slot);
        let desc = |name: &str, n: usize| LoopDesc::new(profile(name), n);
        // descriptor for the state-gathering loops, whose gathered dat
        // switches from `w` to `w1` in the second RK phase — the
        // dependency analyzer must see what the body actually reads
        let state_desc = |name: &str, n: usize, phase: usize| {
            let mut p = profile(name);
            if phase == 1 {
                for a in &mut p.args {
                    if a.dat == "w" {
                        a.dat = "w1".into();
                    }
                }
            }
            LoopDesc::new(p, n)
        };

        let mut chain = Chain::new("volna_step");
        {
            let (ws, wolds) = (&ws, &wolds);
            chain.record(desc("sim_1", nc), vec![], move |c| unsafe {
                sim_1(ws.slice(c * 4, 4), wolds.slice_mut(c * 4, 4));
            });
        }
        for phase in 0..2 {
            let state = if phase == 0 { &ws } else { &w1s };
            {
                let efs = &efs;
                chain.record(state_desc("compute_flux", ne, phase), vec![], move |e| {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        compute_flux(
                            egeom.row(e),
                            state.slice(c[0] as usize * 4, 4),
                            state.slice(c[1] as usize * 4, 4),
                            efs.slice_mut(e * 4, 4),
                            g,
                            h_min,
                        );
                    }
                });
            }
            if phase == 0 {
                {
                    let (efs, dts) = (&efs, &dts);
                    chain.record_blocks(desc("numerical_flux", ne), vec![], move |b, range| {
                        let mut local = R::INFINITY;
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            unsafe {
                                numerical_flux(
                                    egeom.row(e),
                                    efs.slice(e * 4, 4),
                                    area.row(c[0] as usize)[0],
                                    area.row(c[1] as usize)[0],
                                    &mut local,
                                    cfl,
                                );
                            }
                        }
                        unsafe { dts.slice_mut(b, 1)[0] = local };
                    });
                }
                {
                    let (dts, dtf) = (&dts, &dtf);
                    chain.epilogue(move || unsafe {
                        let mut merged = R::INFINITY;
                        for &v in dts.slice(0, dts.len()) {
                            merged = if v < merged { v } else { merged };
                        }
                        dtf.slice_mut(0, 1)[0] = merged;
                    });
                }
            }
            {
                let (efs, ress) = (&efs, &ress);
                chain.record_two_phase(
                    state_desc("space_disc", ne, phase),
                    vec![&mesh.edge2cell],
                    move |e| {
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let mut rl = [R::ZERO; 4];
                        let mut rr = [R::ZERO; 4];
                        unsafe {
                            space_disc(
                                egeom.row(e),
                                efs.slice(e * 4, 4),
                                state.slice(c0 * 4, 4),
                                state.slice(c1 * 4, 4),
                                &mut rl,
                                &mut rr,
                                g,
                            );
                        }
                        (c0, rl, c1, rr)
                    },
                    move |_e, inc| unsafe { apply_edge_inc(ress, inc) },
                );
            }
            {
                let ress = &ress;
                chain.record_seq(state_desc("bc_flux", nb, phase), move || {
                    for be in 0..nb {
                        let c0 = mesh.bedge2cell.at(be, 0);
                        unsafe {
                            bc_flux(
                                bgeom.row(be),
                                state.slice(c0 * 4, 4),
                                ress.slice_mut(c0 * 4, 4),
                                g,
                            );
                        }
                    }
                });
            }
            if phase == 0 {
                let (wolds, w1s, ress, dtf) = (&wolds, &w1s, &ress, &dtf);
                chain.record_blocks(desc("RK_1", nc), vec![], move |_b, range| {
                    let dt = unsafe { dtf.slice(0, 1)[0] };
                    for c in range.start as usize..range.end as usize {
                        unsafe {
                            rk_1(
                                wolds.slice(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                w1s.slice_mut(c * 4, 4),
                                area.row(c)[0],
                                dt,
                            );
                        }
                    }
                });
            } else {
                let (wolds, w1s, ress, ws, dtf) = (&wolds, &w1s, &ress, &ws, &dtf);
                chain.record_blocks(desc("RK_2", nc), vec![], move |_b, range| {
                    let dt = unsafe { dtf.slice(0, 1)[0] };
                    for c in range.start as usize..range.end as usize {
                        unsafe {
                            rk_2(
                                wolds.slice(c * 4, 4),
                                w1s.slice(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                ws.slice_mut(c * 4, 4),
                                area.row(c)[0],
                                dt,
                            );
                        }
                    }
                });
            }
        }
        chain.execute(pool, cache, shape, n_threads, block_size, R::BYTES, rec);
    }
    dt_slot[0].to_f64()
}

// ---------------------------------------------------------------------------
// SIMT (OpenCL) emulation
// ---------------------------------------------------------------------------

/// One RK2 step through the SIMT emulation (space_disc uses the colored
/// increment; other loops run as threaded blocks, since direct loops have
/// no increment phase to color). Runs on the process-wide [`ExecPool`]
/// capped at `n_threads` team members (`0` = all).
pub fn step_simt<R: Real>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_simt_on(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        simt_width,
        sched_overhead_ns,
        block_size,
        rec,
    )
}

/// As [`step_simt`] on an explicit pool.
#[allow(clippy::too_many_arguments)]
pub fn step_simt_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let g = R::from_f64(GRAVITY);
    let mesh_edges = sim.case.mesh.n_edges();
    let edge_colored = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(mesh_edges, vec![&sim.case.mesh.edge2cell], block_size),
    );

    // everything except space_disc is identical to the threaded backend
    // (whole-kernel vectorization of direct loops is the compiler's job
    // in OpenCL; the emulation models the colored-increment path)
    let dt = step_simt_inner(
        pool,
        sim,
        cache,
        n_threads,
        block_size,
        rec,
        |sim, state_is_w1, rec| {
            let mesh = &sim.case.mesh;
            let state = if state_is_w1 { &sim.w1 } else { &sim.w };
            maybe_time(rec, "space_disc", R::BYTES, mesh.n_edges(), || {
                let ress = SharedDat::new(&mut sim.res.data);
                pool.simt_colored(
                    edge_colored.two_level(),
                    n_threads,
                    simt_width,
                    sched_overhead_ns,
                    |e| {
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let mut rl = [R::ZERO; 4];
                        let mut rr = [R::ZERO; 4];
                        space_disc(
                            sim.egeom.row(e),
                            sim.eflux.row(e),
                            state.row(c0),
                            state.row(c1),
                            &mut rl,
                            &mut rr,
                            g,
                        );
                        (c0, rl, c1, rr)
                    },
                    // colored increment phase
                    |_e, inc| unsafe { apply_edge_inc(&ress, inc) },
                );
            });
        },
    );
    dt
}

/// Shared skeleton: the threaded step with `space_disc` supplied by the
/// caller (lets the SIMT backend swap in its colored-increment version).
#[allow(clippy::too_many_arguments)]
fn step_simt_inner<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
    space_disc_impl: impl Fn(&mut Volna<R>, bool, Option<&Recorder>),
) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let (nc, ne) = (sim.case.mesh.n_cells(), sim.case.mesh.n_edges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_direct = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(ne, vec![], block_size),
    );

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        let wo = SharedDat::new(&mut w_old.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            for c in range.start as usize..range.end as usize {
                unsafe { sim_1(w.row(c), wo.slice_mut(c * 4, 4)) };
            }
        });
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        maybe_time(rec, "compute_flux", wb, ne, || {
            let mesh = &sim.case.mesh;
            let state = if phase == 0 { &sim.w } else { &sim.w1 };
            let ef = SharedDat::new(&mut sim.eflux.data);
            pool.colored_blocks(edge_direct.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        compute_flux(
                            sim.egeom.row(e),
                            state.row(c[0] as usize),
                            state.row(c[1] as usize),
                            ef.slice_mut(e * 4, 4),
                            g,
                            h_min,
                        );
                    }
                }
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let mesh = &sim.case.mesh;
                let plan = edge_direct.two_level();
                let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                {
                    let dts = SharedDat::new(&mut dt_blocks);
                    pool.colored_blocks(plan, n_threads, |b, range| {
                        let mut local = R::INFINITY;
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            numerical_flux(
                                sim.egeom.row(e),
                                sim.eflux.row(e),
                                sim.area.row(c[0] as usize)[0],
                                sim.area.row(c[1] as usize)[0],
                                &mut local,
                                cfl,
                            );
                        }
                        unsafe { dts.slice_mut(b, 1)[0] = local };
                    });
                }
                for v in dt_blocks {
                    dt = dt.min(v);
                }
            });
        }
        space_disc_impl(sim, phase == 1, rec);
        maybe_time(rec, "bc_flux", wb, sim.case.mesh.n_bedges(), || {
            let state_is_w1 = phase == 1;
            let nb = sim.case.mesh.n_bedges();
            for be in 0..nb {
                let c0 = sim.case.mesh.bedge2cell.at(be, 0);
                let wrow: [R; 4] = std::array::from_fn(|d| {
                    if state_is_w1 {
                        sim.w1.row(c0)[d]
                    } else {
                        sim.w.row(c0)[d]
                    }
                });
                bc_flux(sim.bgeom.row(be), &wrow, sim.res.row_mut(c0), g);
            }
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            let (w_old, w1, res, w, area) = (
                &sim.w_old,
                SharedMut::new(&mut sim.w1),
                SharedMut::new(&mut sim.res),
                SharedMut::new(&mut sim.w),
                &sim.area,
            );
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe {
                        if phase == 0 {
                            rk_1(
                                w_old.row(c),
                                res.get_mut().row_mut(c),
                                w1.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        } else {
                            rk_2(
                                w_old.row(c),
                                w1.get_mut().row(c),
                                res.get_mut().row_mut(c),
                                w.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        }
                    }
                }
            });
        });
    }
    dt.to_f64()
}
