//! The Volna loop drivers (one `step_*` = one RK2 time step; returns the
//! CFL Δt used). Backend shapes mirror the Airfoil drivers; the paper
//! benchmarks Volna in single precision through the same MPI / OpenMP /
//! OpenCL / intrinsics configurations.

use ump_color::PlanInputs;
use ump_core::{
    apply_edge_inc, global_pool_cap, seq_loop, Backend, ExecPool, Layout, OpDat, PlanCache,
    Recorder, Scheme, SharedDat, SharedMut,
};
use ump_lazy::{Chain, LoopDesc, Shape, TileReport, TiledChain};
use ump_simd::{split_sweep, DatView, IdxVec, Real, VecR};

use super::kernels::{bc_flux, compute_flux, numerical_flux, rk_1, rk_2, sim_1, space_disc};
use super::kernels_vec::{
    compute_flux_vec, numerical_flux_vec, rk_1_vec, rk_2_vec, space_disc_vec,
};
use super::{profile, Volna, CFL, GRAVITY, H_MIN};

fn maybe_time<T>(
    rec: Option<&Recorder>,
    name: &str,
    word_bytes: usize,
    n_elems: usize,
    f: impl FnOnce() -> T,
) -> T {
    match rec {
        Some(r) => r.time(&profile(name), word_bytes, n_elems, f),
        None => f(),
    }
}

#[inline(always)]
fn two_rows_mut<R>(data: &mut [R], dim: usize, i: usize, j: usize) -> (&mut [R], &mut [R]) {
    crate::airfoil::drivers::two_rows_mut(data, dim, i, j)
}

// ---------------------------------------------------------------------------
// sequential reference
// ---------------------------------------------------------------------------

/// One RK2 step, scalar sequential. Returns Δt.
pub fn step_seq<R: Real>(sim: &mut Volna<R>, rec: Option<&Recorder>) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        seq_loop(0..nc, |c| sim_1(w.row(c), w_old.row_mut(c)));
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            let eflux = &mut sim.eflux;
            seq_loop(0..ne, |e| {
                let c = mesh.edge2cell.row(e);
                compute_flux(
                    sim.egeom.row(e),
                    state.row(c[0] as usize),
                    state.row(c[1] as usize),
                    eflux.row_mut(e),
                    g,
                    h_min,
                );
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                seq_loop(0..ne, |e| {
                    let c = mesh.edge2cell.row(e);
                    numerical_flux(
                        sim.egeom.row(e),
                        sim.eflux.row(e),
                        sim.area.row(c[0] as usize)[0],
                        sim.area.row(c[1] as usize)[0],
                        &mut dt,
                        cfl,
                    );
                });
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let res = &mut sim.res;
            seq_loop(0..ne, |e| {
                let c = mesh.edge2cell.row(e);
                let (c0, c1) = (c[0] as usize, c[1] as usize);
                let (rl, rr) = two_rows_mut(&mut res.data, 4, c0, c1);
                space_disc(
                    sim.egeom.row(e),
                    sim.eflux.row(e),
                    state.row(c0),
                    state.row(c1),
                    rl,
                    rr,
                    g,
                );
            });
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            let res = &mut sim.res;
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), res.row_mut(c0), g);
            });
        });
        if phase == 0 {
            maybe_time(rec, "RK_1", wb, nc, || {
                let (w_old, res, w1, area) = (&sim.w_old, &mut sim.res, &mut sim.w1, &sim.area);
                seq_loop(0..nc, |c| {
                    rk_1(
                        w_old.row(c),
                        res.row_mut(c),
                        w1.row_mut(c),
                        area.row(c)[0],
                        dt,
                    );
                });
            });
        } else {
            maybe_time(rec, "RK_2", wb, nc, || {
                let (w_old, w1, res, w, area) =
                    (&sim.w_old, &sim.w1, &mut sim.res, &mut sim.w, &sim.area);
                seq_loop(0..nc, |c| {
                    rk_2(
                        w_old.row(c),
                        w1.row(c),
                        res.row_mut(c),
                        w.row_mut(c),
                        area.row(c)[0],
                        dt,
                    );
                });
            });
        }
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// threaded (OpenMP-analogue)
// ---------------------------------------------------------------------------

/// One RK2 step with colored-block threading on the process-wide
/// [`ExecPool`], capped at `n_threads` team members (`0` = all).
pub fn step_threaded<R: Real>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_threaded_on(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// One RK2 step with colored-block threading on an explicit pool.
pub fn step_threaded_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_direct = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(ne, vec![], block_size),
    );
    let edge_colored = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
    );

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        let wo = SharedDat::new(&mut w_old.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            for c in range.start as usize..range.end as usize {
                unsafe { sim_1(w.row(c), wo.slice_mut(c * 4, 4)) };
            }
        });
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            let ef = SharedDat::new(&mut sim.eflux.data);
            pool.colored_blocks(edge_direct.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        compute_flux(
                            sim.egeom.row(e),
                            state.row(c[0] as usize),
                            state.row(c[1] as usize),
                            ef.slice_mut(e * 4, 4),
                            g,
                            h_min,
                        );
                    }
                }
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let plan = edge_direct.two_level();
                let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                {
                    let dts = SharedDat::new(&mut dt_blocks);
                    pool.colored_blocks(plan, n_threads, |b, range| {
                        let mut local = R::INFINITY;
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            numerical_flux(
                                sim.egeom.row(e),
                                sim.eflux.row(e),
                                sim.area.row(c[0] as usize)[0],
                                sim.area.row(c[1] as usize)[0],
                                &mut local,
                                cfl,
                            );
                        }
                        unsafe { dts.slice_mut(b, 1)[0] = local };
                    });
                }
                for v in dt_blocks {
                    dt = dt.min(v);
                }
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let ress = SharedDat::new(&mut sim.res.data);
            pool.colored_blocks(edge_colored.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (rl, rr) =
                        unsafe { (ress.slice_mut(c0 * 4, 4), ress.slice_mut(c1 * 4, 4)) };
                    space_disc(
                        sim.egeom.row(e),
                        sim.eflux.row(e),
                        state.row(c0),
                        state.row(c1),
                        rl,
                        rr,
                        g,
                    );
                }
            });
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            let res = &mut sim.res;
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), res.row_mut(c0), g);
            });
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            let (w_old, w1, res, w, area) = (
                &sim.w_old,
                SharedMut::new(&mut sim.w1),
                SharedMut::new(&mut sim.res),
                SharedMut::new(&mut sim.w),
                &sim.area,
            );
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe {
                        if phase == 0 {
                            rk_1(
                                w_old.row(c),
                                res.get_mut().row_mut(c),
                                w1.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        } else {
                            rk_2(
                                w_old.row(c),
                                w1.get_mut().row(c),
                                res.get_mut().row_mut(c),
                                w.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        }
                    }
                }
            });
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// explicit SIMD (single thread)
// ---------------------------------------------------------------------------

/// One RK2 step, explicitly vectorized at `L` lanes (the paper's
/// single-precision Volna vector configurations).
pub fn step_simd<R: Real, const L: usize>(sim: &mut Volna<R>, rec: Option<&Recorder>) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    maybe_time(rec, "sim_1", wb, nc, || {
        let flat = nc * 4;
        let sweep = split_sweep(0..flat, L, 0);
        for i in sweep.scalar_items() {
            sim.w_old.data[i] = sim.w.data[i];
        }
        for i in sweep.vector_chunks() {
            VecR::<R, L>::load(&sim.w.data, i).store(&mut sim.w_old.data, i);
        }
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            simd_compute_flux_sweep::<R, L>(
                0..ne,
                mesh,
                &sim.egeom,
                state,
                &mut sim.eflux,
                g,
                h_min,
            );
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let local = simd_numerical_flux_sweep::<R, L>(
                    0..ne,
                    mesh,
                    &sim.egeom,
                    &sim.eflux,
                    &sim.area,
                    cfl,
                );
                dt = dt.min(local);
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            simd_space_disc_sweep::<R, L>(
                0..ne,
                mesh,
                &sim.egeom,
                &sim.eflux,
                state,
                &mut sim.res,
                g,
            );
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), sim.res.row_mut(c0), g);
            });
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            if phase == 0 {
                simd_rk1_sweep::<R, L>(0..nc, &sim.w_old, &mut sim.res, &mut sim.w1, &sim.area, dt);
            } else {
                simd_rk2_sweep::<R, L>(
                    0..nc,
                    &sim.w_old,
                    &sim.w1,
                    &mut sim.res,
                    &mut sim.w,
                    &sim.area,
                    dt,
                );
            }
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// shared SIMD chunk kernels and sweeps (pure-SIMD, hybrid, scheme and
// fused drivers)
// ---------------------------------------------------------------------------

/// One lane-aligned chunk of vectorized `compute_flux`. Raw-slice +
/// [`DatView`] signature so the pooled sweeps (`OpDat` storage) and the
/// fused-chain vector bodies (`SharedDat` views) share one copy of the
/// layout-aware index arithmetic; under AoS every view op lowers to the
/// historical strided/gather form.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn compute_flux_chunk<R: Real, const L: usize>(
    es: usize,
    e2c: &[i32],
    egeom: &[R],
    egv: DatView,
    state: &[R],
    sv: DatView,
    eflux: &mut [R],
    efv: DatView,
    g: R,
    h_min: R,
) {
    let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
    let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
    let geom: [VecR<R, L>; 4] = std::array::from_fn(|d| egv.loadv(egeom, es, d));
    let wl: [VecR<R, L>; 4] = std::array::from_fn(|d| sv.gatherv(state, c0, d));
    let wr: [VecR<R, L>; 4] = std::array::from_fn(|d| sv.gatherv(state, c1, d));
    let f = compute_flux_vec(&geom, &wl, &wr, g, h_min);
    for d in 0..4 {
        efv.storev(f[d], eflux, es, d);
    }
}

/// One lane-aligned chunk of vectorized `numerical_flux`: folds the
/// chunk's CFL Δt candidates into `dt_acc` (exact — `min` does not
/// reassociate).
#[inline(always)]
pub(crate) fn numerical_flux_chunk<R: Real, const L: usize>(
    es: usize,
    e2c: &[i32],
    eflux: &[R],
    efv: DatView,
    area: &[R],
    dt_acc: &mut VecR<R, L>,
    cfl: R,
) {
    let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
    let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
    let lam = efv.loadv::<R, L>(eflux, es, 3);
    // area is dim-1: its indexing is layout-invariant, keep the direct gather
    let al = VecR::gather(area, c0, 1, 0);
    let ar = VecR::gather(area, c1, 1, 0);
    numerical_flux_vec(lam, al, ar, dt_acc, cfl);
}

/// One lane-aligned chunk of vectorized `space_disc` with *serialized*
/// lane scatter (ascending lane order — the scalar accumulation order).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn space_disc_chunk<R: Real, const L: usize>(
    es: usize,
    e2c: &[i32],
    egeom: &[R],
    egv: DatView,
    eflux: &[R],
    efv: DatView,
    state: &[R],
    sv: DatView,
    res: &mut [R],
    resv: DatView,
    g: R,
) {
    let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
    let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
    let geom: [VecR<R, L>; 4] = std::array::from_fn(|d| egv.loadv(egeom, es, d));
    let ef: [VecR<R, L>; 4] = std::array::from_fn(|d| efv.loadv(eflux, es, d));
    let wl: [VecR<R, L>; 4] = std::array::from_fn(|d| sv.gatherv(state, c0, d));
    let wr: [VecR<R, L>; 4] = std::array::from_fn(|d| sv.gatherv(state, c1, d));
    let (rl, rr) = space_disc_vec(&geom, &ef, &wl, &wr, g);
    for d in 0..3 {
        resv.scatter_add_serialv(rl[d], res, c0, d);
        resv.scatter_add_serialv(rr[d], res, c1, d);
    }
}

/// One lane-aligned chunk of vectorized `RK_1`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn rk1_chunk<R: Real, const L: usize>(
    cs: usize,
    w_old: &[R],
    woldv: DatView,
    res: &mut [R],
    resv: DatView,
    w1: &mut [R],
    w1v: DatView,
    area: &[R],
    dt: R,
) {
    let w_old_p: [VecR<R, L>; 4] = std::array::from_fn(|d| woldv.loadv(w_old, cs, d));
    let mut res_p: [VecR<R, L>; 4] = std::array::from_fn(|d| resv.loadv(res, cs, d));
    let area_p = VecR::<R, L>::load(area, cs);
    let mut w1_p = [VecR::<R, L>::zero(); 4];
    rk_1_vec(&w_old_p, &mut res_p, &mut w1_p, area_p, dt);
    for d in 0..4 {
        w1v.storev(w1_p[d], w1, cs, d);
        resv.storev(res_p[d], res, cs, d);
    }
}

/// One lane-aligned chunk of vectorized `RK_2`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn rk2_chunk<R: Real, const L: usize>(
    cs: usize,
    w_old: &[R],
    woldv: DatView,
    w1: &[R],
    w1v: DatView,
    res: &mut [R],
    resv: DatView,
    w: &mut [R],
    wv: DatView,
    area: &[R],
    dt: R,
) {
    let w_old_p: [VecR<R, L>; 4] = std::array::from_fn(|d| woldv.loadv(w_old, cs, d));
    let w1_p: [VecR<R, L>; 4] = std::array::from_fn(|d| w1v.loadv(w1, cs, d));
    let mut res_p: [VecR<R, L>; 4] = std::array::from_fn(|d| resv.loadv(res, cs, d));
    let area_p = VecR::<R, L>::load(area, cs);
    let mut w_p = [VecR::<R, L>::zero(); 4];
    rk_2_vec(&w_old_p, &w1_p, &mut res_p, &mut w_p, area_p, dt);
    for d in 0..4 {
        wv.storev(w_p[d], w, cs, d);
        resv.storev(res_p[d], res, cs, d);
    }
}

/// Vectorized `compute_flux` over an edge range: gathers both cell
/// states through `edge2cell`, loads geometry strided, stores the flux
/// pack strided.
pub(crate) fn simd_compute_flux_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    mesh: &ump_mesh::Mesh2d,
    egeom: &OpDat<R>,
    state: &OpDat<R>,
    eflux: &mut OpDat<R>,
    g: R,
    h_min: R,
) {
    let sweep = split_sweep(range, L, 0);
    for e in sweep.scalar_items() {
        let c = mesh.edge2cell.row(e);
        compute_flux(
            egeom.row(e),
            state.row(c[0] as usize),
            state.row(c[1] as usize),
            eflux.row_mut(e),
            g,
            h_min,
        );
    }
    let efv = eflux.view();
    for es in sweep.vector_chunks() {
        compute_flux_chunk::<R, L>(
            es,
            &mesh.edge2cell.data,
            &egeom.data,
            egeom.view(),
            &state.data,
            state.view(),
            &mut eflux.data,
            efv,
            g,
            h_min,
        );
    }
}

/// Vectorized `numerical_flux` over an edge range: returns the CFL Δt
/// minimum of the range (exact — `min` does not reassociate).
pub(crate) fn simd_numerical_flux_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    mesh: &ump_mesh::Mesh2d,
    egeom: &OpDat<R>,
    eflux: &OpDat<R>,
    area: &OpDat<R>,
    cfl: R,
) -> R {
    let sweep = split_sweep(range, L, 0);
    let mut local = R::INFINITY;
    for e in sweep.scalar_items() {
        let c = mesh.edge2cell.row(e);
        numerical_flux(
            egeom.row(e),
            eflux.row(e),
            area.row(c[0] as usize)[0],
            area.row(c[1] as usize)[0],
            &mut local,
            cfl,
        );
    }
    let mut dt_v = VecR::<R, L>::splat(R::INFINITY);
    for es in sweep.vector_chunks() {
        numerical_flux_chunk::<R, L>(
            es,
            &mesh.edge2cell.data,
            &eflux.data,
            eflux.view(),
            &area.data,
            &mut dt_v,
            cfl,
        );
    }
    local.min(dt_v.reduce_min())
}

/// Vectorized `space_disc` over an edge range with *serialized* lane
/// scatter (the original-scheme shape — safe within one thread).
pub(crate) fn simd_space_disc_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    mesh: &ump_mesh::Mesh2d,
    egeom: &OpDat<R>,
    eflux: &OpDat<R>,
    state: &OpDat<R>,
    res: &mut OpDat<R>,
    g: R,
) {
    let sweep = split_sweep(range, L, 0);
    for e in sweep.scalar_items() {
        let c = mesh.edge2cell.row(e);
        let (c0, c1) = (c[0] as usize, c[1] as usize);
        let (rl, rr) = two_rows_mut(&mut res.data, 4, c0, c1);
        space_disc(
            egeom.row(e),
            eflux.row(e),
            state.row(c0),
            state.row(c1),
            rl,
            rr,
            g,
        );
    }
    let resv = res.view();
    for es in sweep.vector_chunks() {
        space_disc_chunk::<R, L>(
            es,
            &mesh.edge2cell.data,
            &egeom.data,
            egeom.view(),
            &eflux.data,
            eflux.view(),
            &state.data,
            state.view(),
            &mut res.data,
            resv,
            g,
        );
    }
}

/// Vectorized `RK_1` over a cell range.
pub(crate) fn simd_rk1_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    w_old: &OpDat<R>,
    res: &mut OpDat<R>,
    w1: &mut OpDat<R>,
    area: &OpDat<R>,
    dt: R,
) {
    let sweep = split_sweep(range, L, 0);
    for c in sweep.scalar_items() {
        rk_1(
            w_old.row(c),
            res.row_mut(c),
            w1.row_mut(c),
            area.row(c)[0],
            dt,
        );
    }
    let (resv, w1v) = (res.view(), w1.view());
    for cs in sweep.vector_chunks() {
        rk1_chunk::<R, L>(
            cs,
            &w_old.data,
            w_old.view(),
            &mut res.data,
            resv,
            &mut w1.data,
            w1v,
            &area.data,
            dt,
        );
    }
}

/// Vectorized `RK_2` over a cell range.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simd_rk2_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    w_old: &OpDat<R>,
    w1: &OpDat<R>,
    res: &mut OpDat<R>,
    w: &mut OpDat<R>,
    area: &OpDat<R>,
    dt: R,
) {
    let sweep = split_sweep(range, L, 0);
    for c in sweep.scalar_items() {
        rk_2(
            w_old.row(c),
            w1.row(c),
            res.row_mut(c),
            w.row_mut(c),
            area.row(c)[0],
            dt,
        );
    }
    let (resv, wv) = (res.view(), w.view());
    for cs in sweep.vector_chunks() {
        rk2_chunk::<R, L>(
            cs,
            &w_old.data,
            w_old.view(),
            &w1.data,
            w1.view(),
            &mut res.data,
            resv,
            &mut w.data,
            wv,
            &area.data,
            dt,
        );
    }
}

// ---------------------------------------------------------------------------
// hybrid: threads × vectors
// ---------------------------------------------------------------------------

/// One RK2 step with colored-block threading *and* explicit SIMD inside
/// each block (the paper's vectorized MPI+OpenMP shape for Volna), on
/// the process-wide [`ExecPool`] capped at `n_threads` members (`0` =
/// all).
pub fn step_simd_threaded<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_simd_threaded_on::<R, L>(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_simd_threaded`] on an explicit pool.
pub fn step_simd_threaded_on<R: Real, const L: usize>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_direct = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(ne, vec![], block_size),
    );
    let edge_colored = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
    );

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        let wo = SharedDat::new(&mut w_old.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            let (s, e) = (range.start as usize * 4, range.end as usize * 4);
            let sweep = split_sweep(s..e, L, 0);
            unsafe {
                let dst = wo.slice_mut(0, wo.len());
                for i in sweep.scalar_items() {
                    dst[i] = w.data[i];
                }
                for i in sweep.vector_chunks() {
                    VecR::<R, L>::load(&w.data, i).store(dst, i);
                }
            }
        });
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            let efs = SharedMut::new(&mut sim.eflux);
            pool.colored_blocks(edge_direct.two_level(), n_threads, |_b, range| {
                let eflux: &mut OpDat<R> = unsafe { efs.get_mut() };
                simd_compute_flux_sweep::<R, L>(
                    range.start as usize..range.end as usize,
                    mesh,
                    &sim.egeom,
                    state,
                    eflux,
                    g,
                    h_min,
                );
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let plan = edge_direct.two_level();
                let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                {
                    let dts = SharedDat::new(&mut dt_blocks);
                    pool.colored_blocks(plan, n_threads, |b, range| {
                        let local = simd_numerical_flux_sweep::<R, L>(
                            range.start as usize..range.end as usize,
                            mesh,
                            &sim.egeom,
                            &sim.eflux,
                            &sim.area,
                            cfl,
                        );
                        unsafe { dts.slice_mut(b, 1)[0] = local };
                    });
                }
                for v in dt_blocks {
                    dt = dt.min(v);
                }
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let ress = SharedMut::new(&mut sim.res);
            pool.colored_blocks(edge_colored.two_level(), n_threads, |_b, range| {
                let res: &mut OpDat<R> = unsafe { ress.get_mut() };
                simd_space_disc_sweep::<R, L>(
                    range.start as usize..range.end as usize,
                    mesh,
                    &sim.egeom,
                    &sim.eflux,
                    state,
                    res,
                    g,
                );
            });
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            let res = &mut sim.res;
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), res.row_mut(c0), g);
            });
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            let (w_old, area) = (&sim.w_old, &sim.area);
            let (w1s, ress, ws) = (
                SharedMut::new(&mut sim.w1),
                SharedMut::new(&mut sim.res),
                SharedMut::new(&mut sim.w),
            );
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                let r = range.start as usize..range.end as usize;
                unsafe {
                    if phase == 0 {
                        simd_rk1_sweep::<R, L>(r, w_old, ress.get_mut(), w1s.get_mut(), area, dt);
                    } else {
                        simd_rk2_sweep::<R, L>(
                            r,
                            w_old,
                            w1s.get_mut(),
                            ress.get_mut(),
                            ws.get_mut(),
                            area,
                            dt,
                        );
                    }
                }
            });
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// SIMD space_disc under the three coloring schemes (Fig. 8a for Volna)
// ---------------------------------------------------------------------------

/// One RK2 step where `space_disc` uses the chosen coloring scheme's
/// SIMD execution (other loops as in [`step_simd`]); single-threaded.
/// The permute schemes gather everything through the permutation and use
/// true vector scatters (lane independence guaranteed per color group).
pub fn step_simd_scheme<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    scheme: Scheme,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let mesh = &sim.case.mesh;
    let (nc, ne) = (mesh.n_cells(), mesh.n_edges());

    maybe_time(rec, "sim_1", wb, nc, || {
        sim.w_old.data.copy_from_slice(&sim.w.data);
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        let state = if phase == 0 { &sim.w } else { &sim.w1 };
        maybe_time(rec, "compute_flux", wb, ne, || {
            simd_compute_flux_sweep::<R, L>(
                0..ne,
                mesh,
                &sim.egeom,
                state,
                &mut sim.eflux,
                g,
                h_min,
            );
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let local = simd_numerical_flux_sweep::<R, L>(
                    0..ne,
                    mesh,
                    &sim.egeom,
                    &sim.eflux,
                    &sim.area,
                    cfl,
                );
                dt = dt.min(local);
            });
        }
        maybe_time(rec, "space_disc", wb, ne, || {
            let gather_group = |group: &[u32], res: &mut OpDat<R>| {
                // conflict-free group: chunks of L via index gathers and
                // true vector scatter-adds; sub-L tail scalar
                let e2c = &mesh.edge2cell.data;
                let mut i = 0;
                while i + L <= group.len() {
                    let ids: [usize; L] = std::array::from_fn(|l| group[i + l] as usize);
                    let eidx = IdxVec::<L>::from_array(ids.map(|e| e as i32));
                    let c0 = IdxVec::<L>::from_array(ids.map(|e| e2c[e * 2]));
                    let c1 = IdxVec::<L>::from_array(ids.map(|e| e2c[e * 2 + 1]));
                    let geom: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::gather(&sim.egeom.data, eidx, 4, d));
                    let ef: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::gather(&sim.eflux.data, eidx, 4, d));
                    let wl: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::gather(&state.data, c0, 4, d));
                    let wr: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::gather(&state.data, c1, 4, d));
                    let (rl, rr) = space_disc_vec(&geom, &ef, &wl, &wr, g);
                    for d in 0..3 {
                        rl[d].scatter_add(&mut res.data, c0, 4, d);
                        rr[d].scatter_add(&mut res.data, c1, 4, d);
                    }
                    i += L;
                }
                for &eu in &group[i..] {
                    let e = eu as usize;
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (rl, rr) = two_rows_mut(&mut res.data, 4, c0, c1);
                    space_disc(
                        sim.egeom.row(e),
                        sim.eflux.row(e),
                        state.row(c0),
                        state.row(c1),
                        rl,
                        rr,
                        g,
                    );
                }
            };
            match scheme {
                Scheme::TwoLevel => {
                    simd_space_disc_sweep::<R, L>(
                        0..ne,
                        mesh,
                        &sim.egeom,
                        &sim.eflux,
                        state,
                        &mut sim.res,
                        g,
                    );
                }
                Scheme::FullPermute => {
                    let plan = cache.get(
                        Scheme::FullPermute,
                        &["edge2cell"],
                        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
                    );
                    let plan = plan.full_permute();
                    for c in 0..plan.coloring.n_colors as usize {
                        let group =
                            &plan.perm[plan.offsets[c] as usize..plan.offsets[c + 1] as usize];
                        gather_group(group, &mut sim.res);
                    }
                }
                Scheme::BlockPermute => {
                    let plan = cache.get(
                        Scheme::BlockPermute,
                        &["edge2cell"],
                        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
                    );
                    let plan = plan.block_permute();
                    for b in 0..plan.blocks.len() {
                        let r = plan.blocks[b].clone();
                        let offs = &plan.color_offsets[b];
                        for c in 0..offs.len() - 1 {
                            let group = &plan.perm[r.start as usize + offs[c] as usize
                                ..r.start as usize + offs[c + 1] as usize];
                            gather_group(group, &mut sim.res);
                        }
                    }
                }
            }
        });
        maybe_time(rec, "bc_flux", wb, mesh.n_bedges(), || {
            seq_loop(0..mesh.n_bedges(), |be| {
                let c0 = mesh.bedge2cell.at(be, 0);
                bc_flux(sim.bgeom.row(be), state.row(c0), sim.res.row_mut(c0), g);
            });
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            if phase == 0 {
                simd_rk1_sweep::<R, L>(0..nc, &sim.w_old, &mut sim.res, &mut sim.w1, &sim.area, dt);
            } else {
                simd_rk2_sweep::<R, L>(
                    0..nc,
                    &sim.w_old,
                    &sim.w1,
                    &mut sim.res,
                    &mut sim.w,
                    &sim.area,
                    dt,
                );
            }
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// fused loop chains — the ump_lazy deferred-execution backend
// ---------------------------------------------------------------------------

/// One RK2 step recorded as an `ump_lazy` loop chain and executed with
/// cross-loop fusion on the process-wide [`ExecPool`] (threaded shape,
/// `n_threads` team members, `0` = all). Returns Δt.
///
/// The three edge loops of phase 0 (`compute_flux`, `numerical_flux`,
/// `space_disc`) fuse into a single colored dispatch — their
/// dependencies are direct (the per-edge flux pack) — and phase 1 fuses
/// `compute_flux+space_disc`; the Δt reduction is merged by an epilogue
/// before `RK_1` consumes it. Three dispatch rounds fewer per step than
/// [`step_threaded`], with the edge working set streamed once per group.
pub fn step_fused<R: Real>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_fused_on(
        ExecPool::global(),
        sim,
        cache,
        Shape::Threaded,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_fused`] on an explicit pool and execution shape
/// ([`Shape::Threaded`] or [`Shape::Simt`]; for the vectorized fused
/// shape use [`step_fused_simd_on`], which pins the lane count).
pub fn step_fused_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    shape: Shape,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    fused_chain_step::<R, 4>(pool, sim, cache, shape, n_threads, block_size, rec)
}

/// One RK2 step through the **fused-SIMD** backend: the fused chain of
/// [`step_fused`] with `L`-lane vector bodies on every pooled loop,
/// executed via [`Shape::Simd`] — same union-write-set plans and pool
/// rounds as the fused threaded shape, lane-vectorized block bodies.
/// Runs on the process-wide [`ExecPool`] capped at `n_threads` members
/// (`0` = all). Returns Δt.
pub fn step_fused_simd<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_fused_simd_on::<R, L>(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_fused_simd`] on an explicit pool.
pub fn step_fused_simd_on<R: Real, const L: usize>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    fused_chain_step::<R, L>(
        pool,
        sim,
        cache,
        Shape::Simd { lanes: L },
        n_threads,
        block_size,
        rec,
    )
}

/// The shared fused-chain RK2 step behind [`step_fused_on`] and
/// [`step_fused_simd_on`]: one recorded chain with scalar and `L`-lane
/// vector bodies serving every fused shape.
fn fused_chain_step<R: Real, const L: usize>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    shape: Shape,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let Volna {
        case,
        w,
        w_old,
        w1,
        res,
        area,
        egeom,
        eflux,
        bgeom,
    } = sim;
    let mesh = &case.mesh;
    let (area, egeom, bgeom) = (&*area, &*egeom, &*bgeom);
    // layout views, captured before the SharedDat borrows below: the
    // fused chain is the one driver family that runs *natively* on
    // SoA/AoSoA storage (every other backend is shimmed to AoS)
    let (wv, woldv, w1v, resv) = (w.view(), w_old.view(), w1.view(), res.view());
    let (egv, efv, bgv) = (egeom.view(), eflux.view(), bgeom.view());
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());
    let n_edge_blocks = ne.div_ceil(block_size);
    // Δt partials: one slot per edge block, folded by an epilogue into
    // `dt_slot` before RK_1 (a later loop of the same chain) reads it
    let mut dt_blocks = vec![R::INFINITY; n_edge_blocks];
    let mut dt_slot = vec![R::INFINITY; 1];
    {
        let ws = SharedDat::new(&mut w.data);
        let wolds = SharedDat::new(&mut w_old.data);
        let w1s = SharedDat::new(&mut w1.data);
        let ress = SharedDat::new(&mut res.data);
        let efs = SharedDat::new(&mut eflux.data);
        let dts = SharedDat::new(&mut dt_blocks);
        let dtf = SharedDat::new(&mut dt_slot);
        // Per-kernel lane selection, measured on the bench host (see
        // docs/ARCHITECTURE.md §8): with lane-friendly storage
        // (SoA/AoSoA) every kernel *without* a serialized indirect
        // scatter runs faster vectorized; the scatter kernels
        // (space_disc, bc_flux) keep their scalar bodies. Under AoS the
        // profile-driven Auto decision stands.
        let lane_friendly = wv.layout != ump_simd::Layout::Aos;
        let lane_hint = move |d: LoopDesc| {
            if !lane_friendly {
                return d;
            }
            let hint = if d.has_indirect_write() {
                ump_lazy::VecHint::Scalar
            } else {
                ump_lazy::VecHint::Vector
            };
            d.with_hint(hint)
        };
        let desc = move |name: &str, n: usize| lane_hint(LoopDesc::new(profile(name), n));
        // descriptor for the state-gathering loops, whose gathered dat
        // switches from `w` to `w1` in the second RK phase — the
        // dependency analyzer must see what the body actually reads
        let state_desc = move |name: &str, n: usize, phase: usize| {
            let mut p = profile(name);
            if phase == 1 {
                for a in &mut p.args {
                    if a.dat == "w" {
                        a.dat = "w1".into();
                    }
                }
            }
            lane_hint(LoopDesc::new(p, n))
        };

        let mut chain = Chain::new("volna_step");
        {
            let (ws, wolds) = (&ws, &wolds);
            chain.record_simd(
                desc("sim_1", nc),
                vec![],
                L,
                move |c| unsafe {
                    let row: [R; 4] = wv.load_row(ws.as_slice(), c);
                    let mut old = [R::ZERO; 4];
                    sim_1(&row, &mut old);
                    woldv.store_row(wolds.slice_mut(0, wolds.len()), c, &old);
                },
                move |cs| unsafe {
                    let src = ws.as_slice();
                    let dst = wolds.slice_mut(0, wolds.len());
                    for d in 0..4 {
                        woldv.storev(wv.loadv::<R, L>(src, cs, d), dst, cs, d);
                    }
                },
            );
        }
        for phase in 0..2 {
            let state = if phase == 0 { &ws } else { &w1s };
            let sv = if phase == 0 { wv } else { w1v };
            {
                let efs = &efs;
                chain.record_simd(
                    state_desc("compute_flux", ne, phase),
                    vec![],
                    L,
                    move |e| {
                        let c = mesh.edge2cell.row(e);
                        unsafe {
                            let ge: [R; 4] = egv.load_row(&egeom.data, e);
                            let s = state.as_slice();
                            let wl: [R; 4] = sv.load_row(s, c[0] as usize);
                            let wr: [R; 4] = sv.load_row(s, c[1] as usize);
                            let mut f = [R::ZERO; 4];
                            compute_flux(&ge, &wl, &wr, &mut f, g, h_min);
                            efv.store_row(efs.slice_mut(0, efs.len()), e, &f);
                        }
                    },
                    move |es| unsafe {
                        compute_flux_chunk::<R, L>(
                            es,
                            &mesh.edge2cell.data,
                            &egeom.data,
                            egv,
                            state.as_slice(),
                            sv,
                            efs.slice_mut(0, efs.len()),
                            efv,
                            g,
                            h_min,
                        );
                    },
                );
            }
            if phase == 0 {
                {
                    let (efs, dts) = (&efs, &dts);
                    // Δt partials land in one slot per block; `min` is
                    // exact in any order, and both recordings below fold
                    // identically
                    if let Shape::Simd { .. } = shape {
                        // SIMD shape: per-chunk fold into the block slot
                        // (one thread per block, so the in-place min
                        // through the shared view is race-free)
                        chain.record_simd(
                            desc("numerical_flux", ne),
                            vec![],
                            L,
                            move |e| {
                                let c = mesh.edge2cell.row(e);
                                unsafe {
                                    let slot = &mut dts.slice_mut(e / block_size, 1)[0];
                                    let ge: [R; 4] = egv.load_row(&egeom.data, e);
                                    let ef: [R; 4] = efv.load_row(efs.as_slice(), e);
                                    numerical_flux(
                                        &ge,
                                        &ef,
                                        area.row(c[0] as usize)[0],
                                        area.row(c[1] as usize)[0],
                                        slot,
                                        cfl,
                                    );
                                }
                            },
                            move |es| unsafe {
                                let mut dt_v = VecR::<R, L>::splat(R::INFINITY);
                                numerical_flux_chunk::<R, L>(
                                    es,
                                    &mesh.edge2cell.data,
                                    efs.as_slice(),
                                    efv,
                                    &area.data,
                                    &mut dt_v,
                                    cfl,
                                );
                                let slot = &mut dts.slice_mut(es / block_size, 1)[0];
                                *slot = slot.min(dt_v.reduce_min());
                            },
                        );
                    } else {
                        // scalar shapes: fold in a register over the
                        // whole block, one store per block
                        chain.record_blocks(desc("numerical_flux", ne), vec![], move |b, range| {
                            let mut local = R::INFINITY;
                            for e in range.start as usize..range.end as usize {
                                let c = mesh.edge2cell.row(e);
                                unsafe {
                                    let ge: [R; 4] = egv.load_row(&egeom.data, e);
                                    let ef: [R; 4] = efv.load_row(efs.as_slice(), e);
                                    numerical_flux(
                                        &ge,
                                        &ef,
                                        area.row(c[0] as usize)[0],
                                        area.row(c[1] as usize)[0],
                                        &mut local,
                                        cfl,
                                    );
                                }
                            }
                            unsafe { dts.slice_mut(b, 1)[0] = local };
                        });
                    }
                }
                {
                    let (dts, dtf) = (&dts, &dtf);
                    chain.epilogue(move || unsafe {
                        let mut merged = R::INFINITY;
                        for &v in dts.slice(0, dts.len()) {
                            merged = if v < merged { v } else { merged };
                        }
                        dtf.slice_mut(0, 1)[0] = merged;
                    });
                }
            }
            {
                let (efs, ress) = (&efs, &ress);
                chain.record_simd_two_phase(
                    state_desc("space_disc", ne, phase),
                    vec![&mesh.edge2cell],
                    L,
                    move |e| {
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let mut rl = [R::ZERO; 4];
                        let mut rr = [R::ZERO; 4];
                        unsafe {
                            let ge: [R; 4] = egv.load_row(&egeom.data, e);
                            let ef: [R; 4] = efv.load_row(efs.as_slice(), e);
                            let s = state.as_slice();
                            let wl: [R; 4] = sv.load_row(s, c0);
                            let wr: [R; 4] = sv.load_row(s, c1);
                            space_disc(&ge, &ef, &wl, &wr, &mut rl, &mut rr, g);
                        }
                        (c0, rl, c1, rr)
                    },
                    // layout-aware apply, matching apply_edge_inc's
                    // accumulation order exactly (left row, then right,
                    // components ascending)
                    move |_e, inc| unsafe {
                        let r = ress.slice_mut(0, ress.len());
                        let (c0, rl, c1, rr) = inc;
                        resv.add_row(r, *c0, rl);
                        resv.add_row(r, *c1, rr);
                    },
                    move |es| unsafe {
                        space_disc_chunk::<R, L>(
                            es,
                            &mesh.edge2cell.data,
                            &egeom.data,
                            egv,
                            efs.as_slice(),
                            efv,
                            state.as_slice(),
                            sv,
                            ress.slice_mut(0, ress.len()),
                            resv,
                            g,
                        );
                    },
                );
            }
            {
                let ress = &ress;
                chain.record_seq(state_desc("bc_flux", nb, phase), move || {
                    for be in 0..nb {
                        let c0 = mesh.bedge2cell.at(be, 0);
                        unsafe {
                            let bg: [R; 2] = bgv.load_row(&bgeom.data, be);
                            let wrow: [R; 4] = sv.load_row(state.as_slice(), c0);
                            let r = ress.slice_mut(0, ress.len());
                            let mut rrow: [R; 4] = resv.load_row(r, c0);
                            bc_flux(&bg, &wrow, &mut rrow, g);
                            resv.store_row(r, c0, &rrow);
                        }
                    }
                });
            }
            if phase == 0 {
                let (wolds, w1s, ress, dtf) = (&wolds, &w1s, &ress, &dtf);
                chain.record_simd(
                    desc("RK_1", nc),
                    vec![],
                    L,
                    move |c| unsafe {
                        let dt = dtf.slice(0, 1)[0];
                        let w_old_row: [R; 4] = woldv.load_row(wolds.as_slice(), c);
                        let r = ress.slice_mut(0, ress.len());
                        let mut res_row: [R; 4] = resv.load_row(r, c);
                        let mut w1_row = [R::ZERO; 4];
                        rk_1(&w_old_row, &mut res_row, &mut w1_row, area.row(c)[0], dt);
                        w1v.store_row(w1s.slice_mut(0, w1s.len()), c, &w1_row);
                        resv.store_row(r, c, &res_row);
                    },
                    move |cs| unsafe {
                        let dt = dtf.slice(0, 1)[0];
                        rk1_chunk::<R, L>(
                            cs,
                            wolds.as_slice(),
                            woldv,
                            ress.slice_mut(0, ress.len()),
                            resv,
                            w1s.slice_mut(0, w1s.len()),
                            w1v,
                            &area.data,
                            dt,
                        );
                    },
                );
            } else {
                let (wolds, w1s, ress, ws, dtf) = (&wolds, &w1s, &ress, &ws, &dtf);
                chain.record_simd(
                    desc("RK_2", nc),
                    vec![],
                    L,
                    move |c| unsafe {
                        let dt = dtf.slice(0, 1)[0];
                        let w_old_row: [R; 4] = woldv.load_row(wolds.as_slice(), c);
                        let w1_row: [R; 4] = w1v.load_row(w1s.as_slice(), c);
                        let r = ress.slice_mut(0, ress.len());
                        let mut res_row: [R; 4] = resv.load_row(r, c);
                        let mut w_row = [R::ZERO; 4];
                        rk_2(
                            &w_old_row,
                            &w1_row,
                            &mut res_row,
                            &mut w_row,
                            area.row(c)[0],
                            dt,
                        );
                        wv.store_row(ws.slice_mut(0, ws.len()), c, &w_row);
                        resv.store_row(r, c, &res_row);
                    },
                    move |cs| unsafe {
                        let dt = dtf.slice(0, 1)[0];
                        rk2_chunk::<R, L>(
                            cs,
                            wolds.as_slice(),
                            woldv,
                            w1s.as_slice(),
                            w1v,
                            ress.slice_mut(0, ress.len()),
                            resv,
                            ws.slice_mut(0, ws.len()),
                            wv,
                            &area.data,
                            dt,
                        );
                    },
                );
            }
        }
        chain.execute(pool, cache, shape, n_threads, block_size, R::BYTES, rec);
    }
    dt_slot[0].to_f64()
}

// ---------------------------------------------------------------------------
// SIMT (OpenCL) emulation
// ---------------------------------------------------------------------------

/// One RK2 step through the SIMT emulation (space_disc uses the colored
/// increment; other loops run as threaded blocks, since direct loops have
/// no increment phase to color). Runs on the process-wide [`ExecPool`]
/// capped at `n_threads` team members (`0` = all).
pub fn step_simt<R: Real>(
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_simt_on(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        simt_width,
        sched_overhead_ns,
        block_size,
        rec,
    )
}

/// As [`step_simt`] on an explicit pool.
#[allow(clippy::too_many_arguments)]
pub fn step_simt_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let g = R::from_f64(GRAVITY);
    let mesh_edges = sim.case.mesh.n_edges();
    let edge_colored = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(mesh_edges, vec![&sim.case.mesh.edge2cell], block_size),
    );

    // everything except space_disc is identical to the threaded backend
    // (whole-kernel vectorization of direct loops is the compiler's job
    // in OpenCL; the emulation models the colored-increment path)
    let dt = step_simt_inner(
        pool,
        sim,
        cache,
        n_threads,
        block_size,
        rec,
        |sim, state_is_w1, rec| {
            let mesh = &sim.case.mesh;
            let state = if state_is_w1 { &sim.w1 } else { &sim.w };
            maybe_time(rec, "space_disc", R::BYTES, mesh.n_edges(), || {
                let ress = SharedDat::new(&mut sim.res.data);
                pool.simt_colored(
                    edge_colored.two_level(),
                    n_threads,
                    simt_width,
                    sched_overhead_ns,
                    |e| {
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let mut rl = [R::ZERO; 4];
                        let mut rr = [R::ZERO; 4];
                        space_disc(
                            sim.egeom.row(e),
                            sim.eflux.row(e),
                            state.row(c0),
                            state.row(c1),
                            &mut rl,
                            &mut rr,
                            g,
                        );
                        (c0, rl, c1, rr)
                    },
                    // colored increment phase
                    |_e, inc| unsafe { apply_edge_inc(&ress, inc) },
                );
            });
        },
    );
    dt
}

/// Shared skeleton: the threaded step with `space_disc` supplied by the
/// caller (lets the SIMT backend swap in its colored-increment version).
#[allow(clippy::too_many_arguments)]
fn step_simt_inner<R: Real>(
    pool: &ExecPool,
    sim: &mut Volna<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
    space_disc_impl: impl Fn(&mut Volna<R>, bool, Option<&Recorder>),
) -> f64 {
    let wb = R::BYTES;
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let (nc, ne) = (sim.case.mesh.n_cells(), sim.case.mesh.n_edges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_direct = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(ne, vec![], block_size),
    );

    maybe_time(rec, "sim_1", wb, nc, || {
        let (w, w_old) = (&sim.w, &mut sim.w_old);
        let wo = SharedDat::new(&mut w_old.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            for c in range.start as usize..range.end as usize {
                unsafe { sim_1(w.row(c), wo.slice_mut(c * 4, 4)) };
            }
        });
    });

    let mut dt = R::INFINITY;
    for phase in 0..2 {
        maybe_time(rec, "compute_flux", wb, ne, || {
            let mesh = &sim.case.mesh;
            let state = if phase == 0 { &sim.w } else { &sim.w1 };
            let ef = SharedDat::new(&mut sim.eflux.data);
            pool.colored_blocks(edge_direct.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        compute_flux(
                            sim.egeom.row(e),
                            state.row(c[0] as usize),
                            state.row(c[1] as usize),
                            ef.slice_mut(e * 4, 4),
                            g,
                            h_min,
                        );
                    }
                }
            });
        });
        if phase == 0 {
            maybe_time(rec, "numerical_flux", wb, ne, || {
                let mesh = &sim.case.mesh;
                let plan = edge_direct.two_level();
                let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                {
                    let dts = SharedDat::new(&mut dt_blocks);
                    pool.colored_blocks(plan, n_threads, |b, range| {
                        let mut local = R::INFINITY;
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            numerical_flux(
                                sim.egeom.row(e),
                                sim.eflux.row(e),
                                sim.area.row(c[0] as usize)[0],
                                sim.area.row(c[1] as usize)[0],
                                &mut local,
                                cfl,
                            );
                        }
                        unsafe { dts.slice_mut(b, 1)[0] = local };
                    });
                }
                for v in dt_blocks {
                    dt = dt.min(v);
                }
            });
        }
        space_disc_impl(sim, phase == 1, rec);
        maybe_time(rec, "bc_flux", wb, sim.case.mesh.n_bedges(), || {
            let state_is_w1 = phase == 1;
            let nb = sim.case.mesh.n_bedges();
            for be in 0..nb {
                let c0 = sim.case.mesh.bedge2cell.at(be, 0);
                let wrow: [R; 4] = std::array::from_fn(|d| {
                    if state_is_w1 {
                        sim.w1.row(c0)[d]
                    } else {
                        sim.w.row(c0)[d]
                    }
                });
                bc_flux(sim.bgeom.row(be), &wrow, sim.res.row_mut(c0), g);
            }
        });
        let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
        maybe_time(rec, rk_name, wb, nc, || {
            let (w_old, w1, res, w, area) = (
                &sim.w_old,
                SharedMut::new(&mut sim.w1),
                SharedMut::new(&mut sim.res),
                SharedMut::new(&mut sim.w),
                &sim.area,
            );
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe {
                        if phase == 0 {
                            rk_1(
                                w_old.row(c),
                                res.get_mut().row_mut(c),
                                w1.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        } else {
                            rk_2(
                                w_old.row(c),
                                w1.get_mut().row(c),
                                res.get_mut().row_mut(c),
                                w.get_mut().row_mut(c),
                                area.row(c)[0],
                                dt,
                            );
                        }
                    }
                }
            });
        });
    }
    dt.to_f64()
}

// ---------------------------------------------------------------------------
// cross-timestep sparse tiling
// ---------------------------------------------------------------------------

/// Record `steps` RK2 steps as one tiled super-chain
/// ([`ump_lazy::TiledChain`]) and sweep it tile-by-tile. Unlike
/// Airfoil's single-epoch chain, Volna's CFL Δt is *consumed* in-chain
/// (`RK_1`/`RK_2` read what `numerical_flux` reduced), so the scheduler
/// cuts the super-chain into two epochs per step at those global
/// barriers — the cross-step cones span the `RK_1 … compute_flux'`
/// epoch that straddles the step boundary. Returns the per-step Δt
/// values.
///
/// Determinism mirrors the Airfoil driver: ascending per-tile execution
/// makes cell/edge state bit-identical to [`step_seq`]; Δt partials land
/// in per-`(step, edge-block)` slots (block-aligned ownership keeps the
/// slots tile-exclusive) merged in block order by an epoch epilogue —
/// and `min` is exact in any order, so Δt equals every other backend's
/// bit-for-bit.
pub fn run_tiled_on<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    pool: &ExecPool,
    n_threads: usize,
    steps: usize,
    tile_cells: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> Vec<f64> {
    run_tiled_report_on::<R, L>(sim, pool, n_threads, steps, tile_cells, block_size, rec).0
}

/// [`run_tiled_on`] returning the executor's [`TileReport`] alongside
/// the history — the bench harness reads the measured redundant-compute
/// fraction and copy traffic from it.
pub fn run_tiled_report_on<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    pool: &ExecPool,
    n_threads: usize,
    steps: usize,
    tile_cells: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> (Vec<f64>, TileReport) {
    let layout = sim.layout();
    if layout != Layout::Aos {
        sim.set_layout(Layout::Aos);
        let out =
            run_tiled_report_on::<R, L>(sim, pool, n_threads, steps, tile_cells, block_size, rec);
        sim.set_layout(layout);
        return out;
    }
    let g = R::from_f64(GRAVITY);
    let h_min = R::from_f64(H_MIN);
    let cfl = R::from_f64(CFL);
    let Volna {
        case,
        w,
        w_old,
        w1,
        res,
        area,
        egeom,
        eflux,
        bgeom,
    } = sim;
    let mesh = &case.mesh;
    let (area, egeom, bgeom) = (&*area, &*egeom, &*bgeom);
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());
    let neb = ne.div_ceil(block_size);
    // Δt partials per (step, edge block) + the per-step merged minima
    let mut dt_parts = vec![R::INFINITY; steps * neb];
    let mut dt_merged = vec![R::INFINITY; steps];
    let report;
    {
        let dts = SharedDat::new(&mut dt_parts);
        let dtm = SharedDat::new(&mut dt_merged);
        let (dts, dtm) = (&dts, &dtm);
        let mut chain = TiledChain::new("volna_tiled");
        chain.register_set("cells", nc);
        chain.register_set("edges", ne);
        chain.register_set("bedges", nb);
        chain.register_map(&mesh.edge2cell);
        chain.register_map(&mesh.bedge2cell);
        let wd = chain.register_dat("w", "cells", 4, &mut w.data);
        let wod = chain.register_dat("w_old", "cells", 4, &mut w_old.data);
        let w1d = chain.register_dat("w1", "cells", 4, &mut w1.data);
        let resd = chain.register_dat("res", "cells", 4, &mut res.data);
        let efd = chain.register_dat("eflux", "edges", 4, &mut eflux.data);
        // the phase-1 gathers read w1, not w — same rename as the fused
        // chain's state_desc, so the cone tracks what bodies actually read
        let state_desc = |name: &str, n: usize, phase: usize| {
            let mut p = profile(name);
            if phase == 1 {
                for a in &mut p.args {
                    if a.dat == "w" {
                        a.dat = "w1".into();
                    }
                }
            }
            LoopDesc::new(p, n)
        };
        for s in 0..steps {
            chain.begin_step();
            chain.record_vec(
                LoopDesc::new(profile("sim_1"), nc),
                move |ctx, c| {
                    let w = ctx.dat(wd);
                    let w_old = unsafe { ctx.dat_mut(wod) };
                    sim_1(&w[c * 4..c * 4 + 4], &mut w_old[c * 4..c * 4 + 4]);
                },
                move |ctx, start, len| {
                    // pure copy: lane moves over the run, scalar tail
                    let w = ctx.dat(wd);
                    let w_old = unsafe { ctx.dat_mut(wod) };
                    let (mut c, end) = (start, start + len);
                    while c + L <= end {
                        for j in 0..4 {
                            let v = VecR::<R, L>::from_fn(|l| w[(c + l) * 4 + j]);
                            for l in 0..L {
                                w_old[(c + l) * 4 + j] = v.lane(l);
                            }
                        }
                        c += L;
                    }
                    while c < end {
                        sim_1(&w[c * 4..c * 4 + 4], &mut w_old[c * 4..c * 4 + 4]);
                        c += 1;
                    }
                },
            );
            for phase in 0..2 {
                let sd = if phase == 0 { wd } else { w1d };
                chain.record(state_desc("compute_flux", ne, phase), move |ctx, e| {
                    let c = mesh.edge2cell.row(e);
                    let state = ctx.dat(sd);
                    let eflux = unsafe { ctx.dat_mut(efd) };
                    compute_flux(
                        egeom.row(e),
                        &state[c[0] as usize * 4..c[0] as usize * 4 + 4],
                        &state[c[1] as usize * 4..c[1] as usize * 4 + 4],
                        &mut eflux[e * 4..e * 4 + 4],
                        g,
                        h_min,
                    );
                });
                if phase == 0 {
                    chain.record(
                        LoopDesc::new(profile("numerical_flux"), ne),
                        move |ctx, e| {
                            // the cone schedules exactly the owned
                            // iterations of a pure-reduction loop, so the
                            // block slot is tile-exclusive
                            debug_assert!(ctx.owned(e));
                            let c = mesh.edge2cell.row(e);
                            let eflux = ctx.dat(efd);
                            let slot =
                                unsafe { &mut dts.slice_mut(s * neb + e / block_size, 1)[0] };
                            numerical_flux(
                                egeom.row(e),
                                &eflux[e * 4..e * 4 + 4],
                                area.row(c[0] as usize)[0],
                                area.row(c[1] as usize)[0],
                                slot,
                                cfl,
                            );
                        },
                    );
                    // merged at this epoch's barrier, before the next
                    // epoch's RK_1 reads it — block-ascending fold, same
                    // as the fused chain's epilogue (min is exact in any
                    // order, so Δt matches every backend bit-for-bit)
                    chain.epilogue(move || unsafe {
                        let mut merged = R::INFINITY;
                        for &v in dts.slice(s * neb, neb) {
                            merged = if v < merged { v } else { merged };
                        }
                        dtm.slice_mut(s, 1)[0] = merged;
                    });
                }
                chain.record(state_desc("space_disc", ne, phase), move |ctx, e| {
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let state = ctx.dat(sd);
                    let eflux = ctx.dat(efd);
                    let res = unsafe { ctx.dat_mut(resd) };
                    let (rl, rr) = two_rows_mut(res, 4, c0, c1);
                    space_disc(
                        egeom.row(e),
                        &eflux[e * 4..e * 4 + 4],
                        &state[c0 * 4..c0 * 4 + 4],
                        &state[c1 * 4..c1 * 4 + 4],
                        rl,
                        rr,
                        g,
                    );
                });
                chain.record(state_desc("bc_flux", nb, phase), move |ctx, be| {
                    let c0 = mesh.bedge2cell.at(be, 0);
                    let state = ctx.dat(sd);
                    let res = unsafe { ctx.dat_mut(resd) };
                    bc_flux(
                        bgeom.row(be),
                        &state[c0 * 4..c0 * 4 + 4],
                        &mut res[c0 * 4..c0 * 4 + 4],
                        g,
                    );
                });
                if phase == 0 {
                    chain.record(LoopDesc::new(profile("RK_1"), nc), move |ctx, c| {
                        let dt = unsafe { dtm.slice(s, 1)[0] };
                        let w_old = ctx.dat(wod);
                        let res = unsafe { ctx.dat_mut(resd) };
                        let w1 = unsafe { ctx.dat_mut(w1d) };
                        rk_1(
                            &w_old[c * 4..c * 4 + 4],
                            &mut res[c * 4..c * 4 + 4],
                            &mut w1[c * 4..c * 4 + 4],
                            area.row(c)[0],
                            dt,
                        );
                    });
                } else {
                    chain.record(LoopDesc::new(profile("RK_2"), nc), move |ctx, c| {
                        let dt = unsafe { dtm.slice(s, 1)[0] };
                        let w_old = ctx.dat(wod);
                        let w1 = ctx.dat(w1d);
                        let res = unsafe { ctx.dat_mut(resd) };
                        let w = unsafe { ctx.dat_mut(wd) };
                        rk_2(
                            &w_old[c * 4..c * 4 + 4],
                            &w1[c * 4..c * 4 + 4],
                            &mut res[c * 4..c * 4 + 4],
                            &mut w[c * 4..c * 4 + 4],
                            area.row(c)[0],
                            dt,
                        );
                    });
                }
            }
        }
        let sched = chain.schedule(tile_cells, block_size);
        report = chain.execute(pool, &sched, n_threads, L, R::BYTES, rec);
    }
    (dt_merged.iter().map(|v| v.to_f64()).collect(), report)
}

/// One RK2 step through the tiled executor (a 1-step super-chain) — the
/// registry dispatcher's `tiled` arm. Multi-step harnesses call
/// [`run_tiled_on`] directly.
pub fn step_tiled_on<R: Real>(
    sim: &mut Volna<R>,
    pool: &ExecPool,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let tile_cells = crate::airfoil::drivers::DISPATCH_TILE_BLOCKS * block_size;
    run_tiled_on::<R, 1>(sim, pool, n_threads, 1, tile_cells, block_size, rec)[0]
}

/// The `tiled_simd{L}` arm: tiled sweep with `L`-lane run bodies on the
/// direct copy loops.
pub fn step_tiled_simd_on<R: Real, const L: usize>(
    sim: &mut Volna<R>,
    pool: &ExecPool,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let tile_cells = crate::airfoil::drivers::DISPATCH_TILE_BLOCKS * block_size;
    run_tiled_on::<R, L>(sim, pool, n_threads, 1, tile_cells, block_size, rec)[0]
}

// ---------------------------------------------------------------------------
// the unified dispatcher — one entry point per execution shape
// ---------------------------------------------------------------------------

/// One RK2 step through any registered [`Backend`], on an explicit pool
/// — the Volna half of the conformance matrix. Mirrors
/// [`airfoil::drivers::step_on`](crate::airfoil::drivers::step_on):
/// pool-free backends ignore `pool`/`n_threads`, lane-carrying backends
/// dispatch to the L = 4 / 8 const instantiations and panic, naming the
/// backend, for unregistered widths.
pub fn step_on<R: Real>(
    backend: Backend,
    sim: &mut Volna<R>,
    pool: &ExecPool,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    use crate::airfoil::drivers::DISPATCH_SIMT_WIDTH;
    // only the fused chain runs natively on SoA/AoSoA storage; every
    // other backend computes in AoS, so convert around the step (pure
    // permutation — results are bit-identical to an all-AoS run)
    let layout = sim.layout();
    if layout != Layout::Aos
        && !matches!(
            backend,
            Backend::Fused | Backend::FusedSimt | Backend::FusedSimd { .. }
        )
    {
        sim.set_layout(Layout::Aos);
        let out = step_on(backend, sim, pool, cache, n_threads, block_size, rec);
        sim.set_layout(layout);
        return out;
    }
    match backend {
        Backend::Seq => step_seq(sim, rec),
        Backend::Threaded => step_threaded_on(pool, sim, cache, n_threads, block_size, rec),
        Backend::Simd { lanes: 4 } => step_simd::<R, 4>(sim, rec),
        Backend::Simd { lanes: 8 } => step_simd::<R, 8>(sim, rec),
        Backend::SimdThreaded { lanes: 4 } => {
            step_simd_threaded_on::<R, 4>(pool, sim, cache, n_threads, block_size, rec)
        }
        Backend::SimdThreaded { lanes: 8 } => {
            step_simd_threaded_on::<R, 8>(pool, sim, cache, n_threads, block_size, rec)
        }
        Backend::SimdScheme { scheme } => {
            step_simd_scheme::<R, 4>(sim, cache, scheme, block_size, rec)
        }
        Backend::Simt => step_simt_on(
            pool,
            sim,
            cache,
            n_threads,
            DISPATCH_SIMT_WIDTH,
            0,
            block_size,
            rec,
        ),
        Backend::Fused => step_fused_on(
            pool,
            sim,
            cache,
            Shape::Threaded,
            n_threads,
            block_size,
            rec,
        ),
        Backend::FusedSimt => step_fused_on(
            pool,
            sim,
            cache,
            Shape::Simt {
                width: DISPATCH_SIMT_WIDTH,
                sched_overhead_ns: 0,
            },
            n_threads,
            block_size,
            rec,
        ),
        Backend::FusedSimd { lanes: 4 } => {
            step_fused_simd_on::<R, 4>(pool, sim, cache, n_threads, block_size, rec)
        }
        Backend::FusedSimd { lanes: 8 } => {
            step_fused_simd_on::<R, 8>(pool, sim, cache, n_threads, block_size, rec)
        }
        // distributed backends: ranks own their pools; the caller's pool
        // and n_threads are unused (needs_pool() is false)
        Backend::MpiFused => super::mpi::step_mpi_fused::<R, 4>(
            sim,
            backend.ranks(),
            block_size,
            Shape::Threaded,
            rec,
        ),
        Backend::MpiFusedSimd { lanes: 4 } => super::mpi::step_mpi_fused::<R, 4>(
            sim,
            backend.ranks(),
            block_size,
            Shape::Simd { lanes: 4 },
            rec,
        ),
        Backend::MpiFusedSimd { lanes: 8 } => super::mpi::step_mpi_fused::<R, 8>(
            sim,
            backend.ranks(),
            block_size,
            Shape::Simd { lanes: 8 },
            rec,
        ),
        Backend::Tiled => step_tiled_on(sim, pool, n_threads, block_size, rec),
        Backend::TiledSimd { lanes: 4 } => {
            step_tiled_simd_on::<R, 4>(sim, pool, n_threads, block_size, rec)
        }
        Backend::TiledSimd { lanes: 8 } => {
            step_tiled_simd_on::<R, 8>(sim, pool, n_threads, block_size, rec)
        }
        other => panic!(
            "backend {} has no compiled lane instantiation — add it to step_on",
            other.name()
        ),
    }
}
