//! The Volna user kernels, vector form — identical arithmetic to
//! `kernels`, over `VecR<R, L>` lanes, with `max`/`min`/`select` in place
//! of branches (the single-precision Phi shape runs these at L = 16).

use ump_simd::{Real, VecR};

/// Vector `compute_flux` over `L` edges: takes gathered state, returns
/// the flux pack `(f_h, f_hu, f_hv, λ·len)`.
#[inline(always)]
pub fn compute_flux_vec<R: Real, const L: usize>(
    geom: &[VecR<R, L>; 4],
    wl: &[VecR<R, L>; 4],
    wr: &[VecR<R, L>; 4],
    g: R,
    h_min: R,
) -> [VecR<R, L>; 4] {
    let (nx, ny, len) = (geom[0], geom[1], geom[2]);
    let hmin = VecR::<R, L>::splat(h_min);
    let half = VecR::<R, L>::splat(R::HALF);
    let gv = VecR::<R, L>::splat(g);

    let hl = wl[0].max(hmin);
    let hr = wr[0].max(hmin);
    let (ul, vl) = (wl[1] / hl, wl[2] / hl);
    let (ur, vr) = (wr[1] / hr, wr[2] / hr);
    let unl = ul * nx + vl * ny;
    let unr = ur * nx + vr * ny;
    let cl = (gv * hl).sqrt();
    let cr = (gv * hr).sqrt();
    let lambda = (unl.abs() + cl).max(unr.abs() + cr);

    let pl = half * gv * hl * hl;
    let pr = half * gv * hr * hr;

    let fl0 = hl * unl;
    let fr0 = hr * unr;
    let fl1 = wl[1] * unl + pl * nx;
    let fr1 = wr[1] * unr + pr * nx;
    let fl2 = wl[2] * unl + pl * ny;
    let fr2 = wr[2] * unr + pr * ny;

    // mass dissipation on the free-surface difference (see scalar kernel)
    let deta = (wr[0] + wr[3]) - (wl[0] + wl[3]);
    [
        (half * (fl0 + fr0) - half * lambda * deta) * len,
        (half * (fl1 + fr1) - half * lambda * (wr[1] - wl[1])) * len,
        (half * (fl2 + fr2) - half * lambda * (wr[2] - wl[2])) * len,
        lambda * len,
    ]
}

/// Vector `numerical_flux`: lane-wise CFL candidates folded into the
/// caller's running minimum vector.
#[inline(always)]
pub fn numerical_flux_vec<R: Real, const L: usize>(
    eflux3: VecR<R, L>,
    area_l: VecR<R, L>,
    area_r: VecR<R, L>,
    dt_acc: &mut VecR<R, L>,
    cfl: R,
) {
    let lam = eflux3.max(VecR::splat(R::from_f64(1e-12)));
    let dt = area_l.min(area_r) * VecR::splat(cfl) / lam;
    *dt_acc = dt_acc.min(dt);
}

/// Vector `space_disc`: returns the increments for both cells
/// (the driver scatters them under the active coloring scheme).
#[inline(always)]
pub fn space_disc_vec<R: Real, const L: usize>(
    geom: &[VecR<R, L>; 4],
    eflux: &[VecR<R, L>; 4],
    wl: &[VecR<R, L>; 4],
    wr: &[VecR<R, L>; 4],
    g: R,
) -> ([VecR<R, L>; 4], [VecR<R, L>; 4]) {
    let (nx, ny, len) = (geom[0], geom[1], geom[2]);
    let gv = VecR::<R, L>::splat(g);
    let half = VecR::<R, L>::splat(R::HALF);
    let b_face = half * (wl[3] + wr[3]);
    let sl = gv * wl[0] * b_face * len;
    let sr = gv * wr[0] * b_face * len;
    let zero = VecR::<R, L>::zero();
    (
        [eflux[0], eflux[1] + sl * nx, eflux[2] + sl * ny, zero],
        [
            -eflux[0],
            -(eflux[1]) - sr * nx,
            -(eflux[2]) - sr * ny,
            zero,
        ],
    )
}

/// Vector `RK_1` over `L` cells.
#[inline(always)]
pub fn rk_1_vec<R: Real, const L: usize>(
    w_old: &[VecR<R, L>; 4],
    res: &mut [VecR<R, L>; 4],
    w1: &mut [VecR<R, L>; 4],
    area: VecR<R, L>,
    dt: R,
) {
    let f = VecR::<R, L>::splat(dt) / area;
    for n in 0..4 {
        w1[n] = w_old[n] - f * res[n];
        res[n] = VecR::zero();
    }
}

/// Vector `RK_2` over `L` cells.
#[inline(always)]
pub fn rk_2_vec<R: Real, const L: usize>(
    w_old: &[VecR<R, L>; 4],
    w1: &[VecR<R, L>; 4],
    res: &mut [VecR<R, L>; 4],
    w: &mut [VecR<R, L>; 4],
    area: VecR<R, L>,
    dt: R,
) {
    let f = VecR::<R, L>::splat(dt) / area;
    let half = VecR::<R, L>::splat(R::HALF);
    for n in 0..4 {
        w[n] = half * (w_old[n] + w1[n] - f * res[n]);
        res[n] = VecR::zero();
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernels;
    use super::*;
    use ump_mesh::SplitMix64;

    const G: f64 = super::super::GRAVITY;

    #[test]
    fn compute_flux_vec_matches_scalar_lanewise() {
        let mut rng = SplitMix64::new(5);
        let mut r = move || rng.next_f64();
        for _ in 0..20 {
            let geoms: Vec<[f64; 4]> = (0..4)
                .map(|_| {
                    let a = r() * std::f64::consts::TAU;
                    [a.cos(), a.sin(), 0.5 + r(), 0.0]
                })
                .collect();
            let wls: Vec<[f64; 4]> = (0..4)
                .map(|_| [0.5 + r(), r() - 0.5, r() - 0.5, -1.0 - r()])
                .collect();
            let wrs: Vec<[f64; 4]> = (0..4)
                .map(|_| [0.5 + r(), r() - 0.5, r() - 0.5, -1.0 - r()])
                .collect();

            let pack = |s: &Vec<[f64; 4]>| {
                std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::from_fn(|l| s[l][d]))
            };
            let vf = compute_flux_vec(&pack(&geoms), &pack(&wls), &pack(&wrs), G, 1e-6);
            for l in 0..4 {
                let mut sf = [0.0f64; 4];
                kernels::compute_flux(&geoms[l], &wls[l], &wrs[l], &mut sf, G, 1e-6);
                for d in 0..4 {
                    assert!(
                        (vf[d].lane(l) - sf[d]).abs() < 1e-11 * (1.0 + sf[d].abs()),
                        "lane {l} dim {d}: {} vs {}",
                        vf[d].lane(l),
                        sf[d]
                    );
                }
            }
        }
    }

    #[test]
    fn space_disc_vec_matches_scalar_lanewise() {
        let geom = [
            [0.8, 0.6, 1.2, 0.0],
            [0.0, 1.0, 0.7, 0.0],
            [1.0, 0.0, 1.0, 0.0],
            [-0.6, 0.8, 0.9, 0.0],
        ];
        let wl = [[2.0, 0.1, 0.0, -2.0]; 4];
        let wr = [[1.5, 0.0, 0.2, -1.4]; 4];
        let ef = [[1.0, -0.5, 0.25, 2.0]; 4];
        let pack = |s: &[[f64; 4]; 4]| {
            std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::from_fn(|l| s[l][d]))
        };
        let (vl, vr) = space_disc_vec(&pack(&geom), &pack(&ef), &pack(&wl), &pack(&wr), G);
        for l in 0..4 {
            let mut rl = [0.0f64; 4];
            let mut rr = [0.0f64; 4];
            kernels::space_disc(&geom[l], &ef[l], &wl[l], &wr[l], &mut rl, &mut rr, G);
            for d in 0..4 {
                assert!(
                    (vl[d].lane(l) - rl[d]).abs() < 1e-12,
                    "left lane {l} dim {d}"
                );
                assert!(
                    (vr[d].lane(l) - rr[d]).abs() < 1e-12,
                    "right lane {l} dim {d}"
                );
            }
        }
    }

    #[test]
    fn numerical_flux_vec_minimum_matches_scalar_fold() {
        let lam = VecR::<f64, 4>::from_array([10.0, 2.0, 5.0, 40.0]);
        let al = VecR::<f64, 4>::splat(4.0);
        let ar = VecR::<f64, 4>::from_array([8.0, 3.0, 4.0, 5.0]);
        let mut acc = VecR::<f64, 4>::splat(f64::INFINITY);
        numerical_flux_vec(lam, al, ar, &mut acc, 0.4);
        let mut dt = f64::INFINITY;
        for l in 0..4 {
            let geom = [0.0, 0.0, 1.0, 0.0];
            let ef = [0.0, 0.0, 0.0, lam.lane(l)];
            kernels::numerical_flux(&geom, &ef, al.lane(l), ar.lane(l), &mut dt, 0.4);
        }
        assert!((acc.reduce_min() - dt).abs() < 1e-15);
    }

    #[test]
    fn rk_vec_match_scalar() {
        let w_old = [[2.0, 0.2, -0.1, -2.0]; 4];
        let res_in = [[0.4, -0.2, 0.6, 0.0]; 4];
        let pack = |s: &[[f64; 4]; 4]| {
            std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::from_fn(|l| s[l][d]))
        };
        let mut resv = pack(&res_in);
        let mut w1v = [VecR::<f64, 4>::zero(); 4];
        rk_1_vec(&pack(&w_old), &mut resv, &mut w1v, VecR::splat(2.0), 0.3);

        let mut res_s = res_in[0];
        let mut w1_s = [0.0; 4];
        kernels::rk_1(&w_old[0], &mut res_s, &mut w1_s, 2.0, 0.3);
        for d in 0..4 {
            assert_eq!(w1v[d].lane(0), w1_s[d]);
            assert_eq!(resv[d].lane(0), 0.0);
        }

        let mut res2v = pack(&res_in);
        let mut wv = [VecR::<f64, 4>::zero(); 4];
        rk_2_vec(
            &pack(&w_old),
            &w1v,
            &mut res2v,
            &mut wv,
            VecR::splat(2.0),
            0.3,
        );
        let mut res2_s = res_in[0];
        let mut w_s = [0.0; 4];
        kernels::rk_2(&w_old[0], &w1_s, &mut res2_s, &mut w_s, 2.0, 0.3);
        for d in 0..4 {
            assert_eq!(wv[d].lane(0), w_s[d]);
        }
    }
}
