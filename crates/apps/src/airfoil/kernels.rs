//! The Airfoil user kernels, scalar form — the "elementary kernel
//! functions" of the OP2 abstraction, straight from OP2's
//! `save_soln.h` / `adt_calc.h` / `res_calc.h` / `bres_calc.h` /
//! `update.h`, generic over precision.

use ump_mesh::generators::BOUND_WALL;
use ump_simd::Real;

use super::Consts;

/// `save_soln`: copy the flow state (direct, cells).
#[inline(always)]
pub fn save_soln<R: Real>(q: &[R], qold: &mut [R]) {
    for n in 0..4 {
        qold[n] = q[n];
    }
}

/// `adt_calc`: local timestep from the cell's four edges (gather x,
/// direct write). `x1..x4` are the cell's nodes in winding order.
#[inline(always)]
pub fn adt_calc<R: Real>(
    x1: &[R],
    x2: &[R],
    x3: &[R],
    x4: &[R],
    q: &[R],
    adt: &mut R,
    c: &Consts<R>,
) {
    let ri = R::ONE / q[0];
    let u = ri * q[1];
    let v = ri * q[2];
    let cs = (c.gam * c.gm1 * (ri * q[3] - R::HALF * (u * u + v * v))).sqrt();

    let mut acc = R::ZERO;
    let mut side = |xa: &[R], xb: &[R]| {
        let dx = xa[0] - xb[0];
        let dy = xa[1] - xb[1];
        acc += (u * dy - v * dx).abs() + cs * (dx * dx + dy * dy).sqrt();
    };
    side(x2, x1);
    side(x3, x2);
    side(x4, x3);
    side(x1, x4);
    *adt = acc / c.cfl;
}

/// `res_calc`: interior edge flux (gather, colored scatter). The edge's
/// first cell (`q1`/`res1`) lies on the right of the directed edge
/// `x1 → x2`.
#[inline(always)]
pub fn res_calc<R: Real>(
    x1: &[R],
    x2: &[R],
    q1: &[R],
    q2: &[R],
    adt1: R,
    adt2: R,
    res1: &mut [R],
    res2: &mut [R],
    c: &Consts<R>,
) {
    let dx = x1[0] - x2[0];
    let dy = x1[1] - x2[1];

    let mut ri = R::ONE / q1[0];
    let p1 = c.gm1 * (q1[3] - R::HALF * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
    let vol1 = ri * (q1[1] * dy - q1[2] * dx);

    ri = R::ONE / q2[0];
    let p2 = c.gm1 * (q2[3] - R::HALF * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
    let vol2 = ri * (q2[1] * dy - q2[2] * dx);

    let mu = R::HALF * (adt1 + adt2) * c.eps;

    let mut f;
    f = R::HALF * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
    res1[0] += f;
    res2[0] -= f;
    f = R::HALF * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (q1[1] - q2[1]);
    res1[1] += f;
    res2[1] -= f;
    f = R::HALF * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (q1[2] - q2[2]);
    res1[2] += f;
    res2[2] -= f;
    f = R::HALF * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3]);
    res1[3] += f;
    res2[3] -= f;
}

/// `bres_calc`: boundary edge flux. Wall edges feel only pressure;
/// far-field edges flux against the freestream state.
#[inline(always)]
pub fn bres_calc<R: Real>(
    x1: &[R],
    x2: &[R],
    q1: &[R],
    adt1: R,
    res1: &mut [R],
    bound: i32,
    c: &Consts<R>,
) {
    let dx = x1[0] - x2[0];
    let dy = x1[1] - x2[1];

    let ri = R::ONE / q1[0];
    let p1 = c.gm1 * (q1[3] - R::HALF * ri * (q1[1] * q1[1] + q1[2] * q1[2]));

    if bound == BOUND_WALL {
        res1[1] += p1 * dy;
        res1[2] -= p1 * dx;
    } else {
        let vol1 = ri * (q1[1] * dy - q1[2] * dx);

        let ri2 = R::ONE / c.qinf[0];
        let p2 =
            c.gm1 * (c.qinf[3] - R::HALF * ri2 * (c.qinf[1] * c.qinf[1] + c.qinf[2] * c.qinf[2]));
        let vol2 = ri2 * (c.qinf[1] * dy - c.qinf[2] * dx);

        let mu = adt1 * c.eps;

        let mut f;
        f = R::HALF * (vol1 * q1[0] + vol2 * c.qinf[0]) + mu * (q1[0] - c.qinf[0]);
        res1[0] += f;
        f = R::HALF * (vol1 * q1[1] + p1 * dy + vol2 * c.qinf[1] + p2 * dy)
            + mu * (q1[1] - c.qinf[1]);
        res1[1] += f;
        f = R::HALF * (vol1 * q1[2] - p1 * dx + vol2 * c.qinf[2] - p2 * dx)
            + mu * (q1[2] - c.qinf[2]);
        res1[2] += f;
        f = R::HALF * (vol1 * (q1[3] + p1) + vol2 * (c.qinf[3] + p2)) + mu * (q1[3] - c.qinf[3]);
        res1[3] += f;
    }
}

/// `update`: advance the state, zero the residual, accumulate the
/// residual RMS (direct, global reduction).
#[inline(always)]
pub fn update<R: Real>(qold: &[R], q: &mut [R], res: &mut [R], adt: R, rms: &mut R) {
    let adti = R::ONE / adt;
    for n in 0..4 {
        let del = adti * res[n];
        q[n] = qold[n] - del;
        res[n] = R::ZERO;
        *rms += del * del;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::generators::BOUND_FARFIELD;

    fn c64() -> Consts<f64> {
        Consts::default()
    }

    #[test]
    fn save_soln_copies() {
        let q = [1.0, 2.0, 3.0, 4.0];
        let mut qold = [0.0; 4];
        save_soln(&q, &mut qold);
        assert_eq!(qold, q);
    }

    #[test]
    fn adt_positive_for_physical_state() {
        let c = c64();
        // unit square cell, freestream state
        let x = [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let mut adt = 0.0;
        adt_calc(&x[0], &x[1], &x[2], &x[3], &c.qinf, &mut adt, &c);
        assert!(adt > 0.0 && adt.is_finite());
        // sound speed dominates at Mach 0.4: adt ≈ (2u + 4c)/cfl-ish scale
        assert!(adt < 20.0);
    }

    #[test]
    fn res_calc_is_conservative_and_zero_for_uniform_flow() {
        let c = c64();
        // For uniform q on both sides, the flux exists but the mu term
        // vanishes and res1 gains exactly what res2 loses.
        let x1 = [0.3, 0.0];
        let x2 = [0.3, 1.0];
        let mut res1 = [0.0; 4];
        let mut res2 = [0.0; 4];
        res_calc(
            &x1, &x2, &c.qinf, &c.qinf, 1.0, 1.0, &mut res1, &mut res2, &c,
        );
        for n in 0..4 {
            assert!(
                (res1[n] + res2[n]).abs() < 1e-14,
                "conservation violated at {n}"
            );
        }
    }

    #[test]
    fn wall_applies_pressure_only() {
        let c = c64();
        // vertical wall edge a→b with the cell on its right
        let x1 = [0.0, 1.0];
        let x2 = [0.0, 0.0];
        let mut res = [0.0; 4];
        bres_calc(&x1, &x2, &c.qinf, 1.0, &mut res, BOUND_WALL, &c);
        assert_eq!(res[0], 0.0, "no mass flux through a wall");
        assert_eq!(res[3], 0.0, "no energy flux through a wall");
        assert!(res[1] != 0.0, "pressure force acts in x");
    }

    #[test]
    fn farfield_at_freestream_is_in_equilibrium_modulo_flux() {
        let c = c64();
        let x1 = [0.0, 0.0];
        let x2 = [0.0, 1.0];
        let mut res = [0.0; 4];
        bres_calc(&x1, &x2, &c.qinf, 1.0, &mut res, BOUND_FARFIELD, &c);
        // with q == qinf the dissipation term vanishes; the flux is the
        // plain freestream flux through the edge
        assert!(res.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn update_advances_and_zeroes_residual() {
        let qold = [1.0, 0.0, 0.0, 2.0];
        let mut q = [0.0; 4];
        let mut res = [0.1, 0.2, -0.1, 0.0];
        let mut rms = 0.0;
        update(&qold, &mut q, &mut res, 2.0, &mut rms);
        assert_eq!(q[0], 1.0 - 0.05);
        assert_eq!(q[1], -0.1);
        assert_eq!(res, [0.0; 4]);
        assert!((rms - (0.05f64 * 0.05 + 0.1 * 0.1 + 0.05 * 0.05)).abs() < 1e-15);
    }

    #[test]
    fn kernels_agree_across_precision() {
        let cd = Consts::<f64>::default();
        let cs = Consts::<f32>::default();
        let x1 = [0.25, 0.5];
        let x2 = [0.75, 0.5];
        let q1 = [1.1, 0.3, -0.1, 2.4];
        let q2 = [0.9, 0.5, 0.2, 2.6];
        let mut r1 = [0.0f64; 4];
        let mut r2 = [0.0f64; 4];
        res_calc(&x1, &x2, &q1, &q2, 1.3, 0.8, &mut r1, &mut r2, &cd);
        let x1s = x1.map(|v| v as f32);
        let x2s = x2.map(|v| v as f32);
        let q1s = q1.map(|v| v as f32);
        let q2s = q2.map(|v| v as f32);
        let mut r1s = [0.0f32; 4];
        let mut r2s = [0.0f32; 4];
        res_calc(&x1s, &x2s, &q1s, &q2s, 1.3, 0.8, &mut r1s, &mut r2s, &cs);
        for n in 0..4 {
            assert!((r1[n] - r1s[n] as f64).abs() < 1e-6, "component {n}");
        }
    }
}
