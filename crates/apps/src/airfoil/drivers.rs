//! The Airfoil loop drivers — the per-backend code OP2's generator emits.
//!
//! Each `step_*` advances one outer iteration (save_soln + 2 × {adt_calc,
//! res_calc, bres_calc, update}) and returns the normalized RMS residual:
//!
//! * [`step_seq`] — scalar reference (paper Fig. 2b's per-rank loop),
//! * [`step_threaded`] — colored-block threading (the OpenMP backend),
//! * [`step_simd`] — explicit vectorization with gathers, serialized
//!   scatters and the three-sweep structure (paper Fig. 3b),
//! * [`step_simd_threaded`] — the hybrid (threads × vectors) backend,
//! * [`step_simd_scheme`] — SIMD `res_calc` under the three coloring
//!   schemes (Fig. 8a's comparison),
//! * [`step_simt`] — the OpenCL-on-CPU emulation (paper Fig. 3a).
//!
//! All drivers compute identical physics; integration tests pin them to
//! the sequential reference within floating-point reassociation bounds.

use ump_color::PlanInputs;
use ump_core::{
    apply_edge_inc, global_pool_cap, seq_loop, Backend, ExecPool, Layout, OpDat, PlanCache,
    Recorder, Scheme, SharedDat, SharedMut,
};
use ump_lazy::{Chain, LoopDesc, Shape, TileReport, TiledChain};
use ump_simd::{split_sweep, DatView, IdxVec, Real, VecR};

use super::kernels::{adt_calc, bres_calc, res_calc, save_soln, update};
use super::kernels_vec::{adt_calc_vec, res_calc_vec, update_vec};
use super::{profile, Airfoil};

/// Split two distinct rows out of a dat's storage for a two-sided update.
#[inline(always)]
pub(crate) fn two_rows_mut<R>(
    data: &mut [R],
    dim: usize,
    i: usize,
    j: usize,
) -> (&mut [R], &mut [R]) {
    debug_assert_ne!(i, j, "edge connects a cell to itself");
    if i < j {
        let (a, b) = data.split_at_mut(j * dim);
        (&mut a[i * dim..(i + 1) * dim], &mut b[..dim])
    } else {
        let (a, b) = data.split_at_mut(i * dim);
        (&mut b[..dim], &mut a[j * dim..(j + 1) * dim])
    }
}

fn maybe_time<T>(
    rec: Option<&Recorder>,
    name: &str,
    word_bytes: usize,
    n_elems: usize,
    f: impl FnOnce() -> T,
) -> T {
    match rec {
        Some(r) => r.time(&profile(name), word_bytes, n_elems, f),
        None => f(),
    }
}

// ---------------------------------------------------------------------------
// sequential reference
// ---------------------------------------------------------------------------

/// One iteration, scalar sequential. Returns √(Σ del²/cells).
pub fn step_seq<R: Real>(sim: &mut Airfoil<R>, rec: Option<&Recorder>) -> f64 {
    let wb = R::BYTES;
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());

    maybe_time(rec, "save_soln", wb, nc, || {
        seq_loop(0..nc, |c| save_soln(q.row(c), qold.row_mut(c)));
    });

    let mut rms = R::ZERO;
    for _phase in 0..2 {
        maybe_time(rec, "adt_calc", wb, nc, || {
            seq_loop(0..nc, |c| {
                let n = mesh.cell2node.row(c);
                let mut a = R::ZERO;
                adt_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    x.row(n[2] as usize),
                    x.row(n[3] as usize),
                    q.row(c),
                    &mut a,
                    consts,
                );
                adt.row_mut(c)[0] = a;
            });
        });
        maybe_time(rec, "res_calc", wb, ne, || {
            seq_loop(0..ne, |e| {
                let n = mesh.edge2node.row(e);
                let c = mesh.edge2cell.row(e);
                let (c0, c1) = (c[0] as usize, c[1] as usize);
                let (r1, r2) = two_rows_mut(&mut res.data, 4, c0, c1);
                res_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    q.row(c1),
                    adt.row(c0)[0],
                    adt.row(c1)[0],
                    r1,
                    r2,
                    consts,
                );
            });
        });
        maybe_time(rec, "bres_calc", wb, nb, || {
            seq_loop(0..nb, |be| {
                let n = mesh.bedge2node.row(be);
                let c0 = mesh.bedge2cell.at(be, 0);
                bres_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    adt.row(c0)[0],
                    res.row_mut(c0),
                    case.bound[be],
                    consts,
                );
            });
        });
        maybe_time(rec, "update", wb, nc, || {
            seq_loop(0..nc, |c| {
                let a = adt.row(c)[0];
                let (qr, resr) = (c * 4, c * 4);
                update(
                    &qold.data[qr..qr + 4],
                    &mut q.data[qr..qr + 4],
                    &mut res.data[resr..resr + 4],
                    a,
                    &mut rms,
                );
            });
        });
    }
    sim.normalize_rms(rms.to_f64())
}

// ---------------------------------------------------------------------------
// threaded (OpenMP-analogue) backend
// ---------------------------------------------------------------------------

/// One iteration with colored-block threading on the process-wide
/// [`ExecPool`], capped at `n_threads` team members (`0` = all).
pub fn step_threaded<R: Real>(
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_threaded_on(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// One iteration with colored-block threading on an explicit pool.
pub fn step_threaded_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_plan = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
    );

    maybe_time(rec, "save_soln", wb, nc, || {
        let qs = SharedDat::new(&mut q.data);
        let qolds = SharedDat::new(&mut qold.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            for c in range.start as usize..range.end as usize {
                unsafe { save_soln(&qs.as_slice()[c * 4..c * 4 + 4], qolds.slice_mut(c * 4, 4)) };
            }
        });
    });

    let mut rms = R::ZERO;
    for _phase in 0..2 {
        maybe_time(rec, "adt_calc", wb, nc, || {
            let adts = SharedDat::new(&mut adt.data);
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    let n = mesh.cell2node.row(c);
                    let mut a = R::ZERO;
                    adt_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        x.row(n[2] as usize),
                        x.row(n[3] as usize),
                        q.row(c),
                        &mut a,
                        consts,
                    );
                    unsafe { adts.slice_mut(c, 1)[0] = a };
                }
            });
        });
        maybe_time(rec, "res_calc", wb, ne, || {
            let ress = SharedDat::new(&mut res.data);
            pool.colored_blocks(edge_plan.two_level(), n_threads, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let n = mesh.edge2node.row(e);
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    // block coloring guarantees no other thread touches
                    // these two cells during this color round
                    let (r1, r2) =
                        unsafe { (ress.slice_mut(c0 * 4, 4), ress.slice_mut(c1 * 4, 4)) };
                    res_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        q.row(c0),
                        q.row(c1),
                        adt.row(c0)[0],
                        adt.row(c1)[0],
                        r1,
                        r2,
                        consts,
                    );
                }
            });
        });
        // boundary set is tiny (paper drops it from analysis): scalar
        maybe_time(rec, "bres_calc", wb, nb, || {
            seq_loop(0..nb, |be| {
                let n = mesh.bedge2node.row(be);
                let c0 = mesh.bedge2cell.at(be, 0);
                bres_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    adt.row(c0)[0],
                    res.row_mut(c0),
                    case.bound[be],
                    consts,
                );
            });
        });
        maybe_time(rec, "update", wb, nc, || {
            let plan = cell_plan.two_level();
            let mut rms_blocks = vec![R::ZERO; plan.blocks.len()];
            {
                let qs = SharedDat::new(&mut q.data);
                let ress = SharedDat::new(&mut res.data);
                let rmss = SharedDat::new(&mut rms_blocks);
                pool.colored_blocks(plan, n_threads, |b, range| {
                    let mut local = R::ZERO;
                    for c in range.start as usize..range.end as usize {
                        unsafe {
                            update(
                                qold.row(c),
                                qs.slice_mut(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                adt.row(c)[0],
                                &mut local,
                            );
                        }
                    }
                    unsafe { rmss.slice_mut(b, 1)[0] = local };
                });
            }
            // deterministic block-order reduction
            for v in rms_blocks {
                rms += v;
            }
        });
    }
    sim.normalize_rms(rms.to_f64())
}

// ---------------------------------------------------------------------------
// explicit SIMD backend (single rank) — paper Fig. 3b
// ---------------------------------------------------------------------------

/// One iteration, explicitly vectorized at `L` lanes, single thread.
/// This is the per-rank body of the paper's "vectorized pure MPI"
/// configuration.
pub fn step_simd<R: Real, const L: usize>(sim: &mut Airfoil<R>, rec: Option<&Recorder>) -> f64 {
    let wb = R::BYTES;
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());

    maybe_time(rec, "save_soln", wb, nc, || {
        // direct copy: vectorize over the flat value array
        let flat = nc * 4;
        let sweep = split_sweep(0..flat, L, 0);
        for i in sweep.scalar_items() {
            qold.data[i] = q.data[i];
        }
        for i in sweep.vector_chunks() {
            VecR::<R, L>::load(&q.data, i).store(&mut qold.data, i);
        }
    });

    let mut rms_v = VecR::<R, L>::zero();
    let mut rms_s = R::ZERO;
    for _phase in 0..2 {
        maybe_time(rec, "adt_calc", wb, nc, || {
            simd_adt_sweep::<R, L>(0..nc, mesh, x, q, adt, consts);
        });
        maybe_time(rec, "res_calc", wb, ne, || {
            simd_res_sweep::<R, L>(0..ne, mesh, x, q, adt, res, consts);
        });
        maybe_time(rec, "bres_calc", wb, nb, || {
            seq_loop(0..nb, |be| {
                let n = mesh.bedge2node.row(be);
                let c0 = mesh.bedge2cell.at(be, 0);
                bres_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    adt.row(c0)[0],
                    res.row_mut(c0),
                    case.bound[be],
                    consts,
                );
            });
        });
        maybe_time(rec, "update", wb, nc, || {
            let (qoldv, qv, resv) = (qold.view(), q.view(), res.view());
            let sweep = split_sweep(0..nc, L, 0);
            for c in sweep.scalar_items() {
                update(
                    qold.row(c),
                    &mut q.data[c * 4..c * 4 + 4],
                    &mut res.data[c * 4..c * 4 + 4],
                    adt.data[c],
                    &mut rms_s,
                );
            }
            for cstart in sweep.vector_chunks() {
                update_chunk::<R, L>(
                    cstart,
                    &qold.data,
                    qoldv,
                    &mut q.data,
                    qv,
                    &mut res.data,
                    resv,
                    &adt.data,
                    &mut rms_v,
                );
            }
        });
    }
    sim.normalize_rms(rms_s.to_f64() + rms_v.reduce_sum().to_f64())
}

/// One lane-aligned chunk of vectorized `adt_calc`: gather node
/// coordinates through `cell2node`, load q through its layout view,
/// store adt contiguously (dim-1 dats index identically in every
/// layout). Raw-slice + [`DatView`] signature so the pooled sweeps
/// (`OpDat` storage) and the fused-chain vector bodies (`SharedDat`
/// views) share one copy of the index arithmetic, and one copy serves
/// AoS, SoA and AoSoA storage.
#[inline(always)]
pub(crate) fn adt_chunk<R: Real, const L: usize>(
    cs: usize,
    c2n: &[i32],
    x: &[R],
    xv: DatView,
    q: &[R],
    qv: DatView,
    adt: &mut [R],
    consts: &super::Consts<R>,
) {
    let nodes: [IdxVec<L>; 4] = std::array::from_fn(|j| IdxVec::load_strided(c2n, cs * 4 + j, 4));
    let xp: [[VecR<R, L>; 2]; 4] =
        std::array::from_fn(|j| [xv.gatherv(x, nodes[j], 0), xv.gatherv(x, nodes[j], 1)]);
    let q_p: [VecR<R, L>; 4] = std::array::from_fn(|d| qv.loadv(q, cs, d));
    let a = adt_calc_vec(&xp[0], &xp[1], &xp[2], &xp[3], &q_p, consts);
    a.store(adt, cs);
}

/// One lane-aligned chunk of vectorized `res_calc` with *serialized*
/// lane scatter (ascending lane order — the scalar accumulation order).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn res_chunk<R: Real, const L: usize>(
    es: usize,
    e2n: &[i32],
    e2c: &[i32],
    x: &[R],
    xv: DatView,
    q: &[R],
    qv: DatView,
    adt: &[R],
    res: &mut [R],
    resv: DatView,
    consts: &super::Consts<R>,
) {
    let n0 = IdxVec::<L>::load_strided(e2n, es * 2, 2);
    let n1 = IdxVec::<L>::load_strided(e2n, es * 2 + 1, 2);
    let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
    let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
    let x1 = [xv.gatherv(x, n0, 0), xv.gatherv(x, n0, 1)];
    let x2 = [xv.gatherv(x, n1, 0), xv.gatherv(x, n1, 1)];
    let q1: [VecR<R, L>; 4] = std::array::from_fn(|d| qv.gatherv(q, c0, d));
    let q2: [VecR<R, L>; 4] = std::array::from_fn(|d| qv.gatherv(q, c1, d));
    let a1 = VecR::gather(adt, c0, 1, 0);
    let a2 = VecR::gather(adt, c1, 1, 0);
    let mut r1 = [VecR::<R, L>::zero(); 4];
    let mut r2 = [VecR::<R, L>::zero(); 4];
    res_calc_vec(&x1, &x2, &q1, &q2, a1, a2, &mut r1, &mut r2, consts);
    for d in 0..4 {
        resv.scatter_add_serialv(r1[d], res, c0, d);
        resv.scatter_add_serialv(r2[d], res, c1, d);
    }
}

/// One lane-aligned chunk of vectorized `update`, folding the residual
/// into `rms` (caller reduces the accumulator once per sweep or block).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_chunk<R: Real, const L: usize>(
    cs: usize,
    qold: &[R],
    qoldv: DatView,
    q: &mut [R],
    qv: DatView,
    res: &mut [R],
    resv: DatView,
    adt: &[R],
    rms: &mut VecR<R, L>,
) {
    let qold_p: [VecR<R, L>; 4] = std::array::from_fn(|d| qoldv.loadv(qold, cs, d));
    let mut q_p = [VecR::<R, L>::zero(); 4];
    let mut res_p: [VecR<R, L>; 4] = std::array::from_fn(|d| resv.loadv(res, cs, d));
    let adt_p = VecR::<R, L>::load(adt, cs);
    update_vec(&qold_p, &mut q_p, &mut res_p, adt_p, rms);
    for d in 0..4 {
        qv.storev(q_p[d], q, cs, d);
        resv.storev(res_p[d], res, cs, d);
    }
}

/// Vectorized adt_calc over an element range (shared by the pure-SIMD and
/// hybrid drivers).
pub(crate) fn simd_adt_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    mesh: &ump_mesh::Mesh2d,
    x: &OpDat<R>,
    q: &OpDat<R>,
    adt: &mut OpDat<R>,
    consts: &super::Consts<R>,
) {
    let sweep = split_sweep(range, L, 0);
    for c in sweep.scalar_items() {
        let n = mesh.cell2node.row(c);
        let mut a = R::ZERO;
        adt_calc(
            x.row(n[0] as usize),
            x.row(n[1] as usize),
            x.row(n[2] as usize),
            x.row(n[3] as usize),
            q.row(c),
            &mut a,
            consts,
        );
        adt.data[c] = a;
    }
    for cs in sweep.vector_chunks() {
        adt_chunk::<R, L>(
            cs,
            &mesh.cell2node.data,
            &x.data,
            x.view(),
            &q.data,
            q.view(),
            &mut adt.data,
            consts,
        );
    }
}

/// Vectorized res_calc over an element range with *serialized* scatter —
/// the "original coloring" SIMD shape of paper Fig. 3b. Safe within one
/// thread regardless of lane collisions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simd_res_sweep<R: Real, const L: usize>(
    range: std::ops::Range<usize>,
    mesh: &ump_mesh::Mesh2d,
    x: &OpDat<R>,
    q: &OpDat<R>,
    adt: &OpDat<R>,
    res: &mut OpDat<R>,
    consts: &super::Consts<R>,
) {
    let sweep = split_sweep(range, L, 0);
    for e in sweep.scalar_items() {
        let n = mesh.edge2node.row(e);
        let c = mesh.edge2cell.row(e);
        let (c0, c1) = (c[0] as usize, c[1] as usize);
        let (r1, r2) = two_rows_mut(&mut res.data, 4, c0, c1);
        res_calc(
            x.row(n[0] as usize),
            x.row(n[1] as usize),
            q.row(c0),
            q.row(c1),
            adt.row(c0)[0],
            adt.row(c1)[0],
            r1,
            r2,
            consts,
        );
    }
    let resv = res.view();
    for es in sweep.vector_chunks() {
        res_chunk::<R, L>(
            es,
            &mesh.edge2node.data,
            &mesh.edge2cell.data,
            &x.data,
            x.view(),
            &q.data,
            q.view(),
            &adt.data,
            &mut res.data,
            resv,
            consts,
        );
    }
}

// ---------------------------------------------------------------------------
// hybrid: threads × vectors
// ---------------------------------------------------------------------------

/// One iteration with colored-block threading *and* explicit SIMD inside
/// each block (the paper's "vectorized MPI+OpenMP" shape), on the
/// process-wide [`ExecPool`] capped at `n_threads` members (`0` = all).
pub fn step_simd_threaded<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_simd_threaded_on::<R, L>(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_simd_threaded`] on an explicit pool.
pub fn step_simd_threaded_on<R: Real, const L: usize>(
    pool: &ExecPool,
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_plan = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
    );

    maybe_time(rec, "save_soln", wb, nc, || {
        let qs = SharedDat::new(&mut qold.data);
        pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
            let (s, e) = (range.start as usize * 4, range.end as usize * 4);
            let sweep = split_sweep(s..e, L, 0);
            unsafe {
                let dst = qs.slice_mut(0, qs.len());
                for i in sweep.scalar_items() {
                    dst[i] = q.data[i];
                }
                for i in sweep.vector_chunks() {
                    VecR::<R, L>::load(&q.data, i).store(dst, i);
                }
            }
        });
    });

    let mut rms = R::ZERO;
    for _phase in 0..2 {
        maybe_time(rec, "adt_calc", wb, nc, || {
            let adts = SharedMut::new(adt);
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                let adt_ref: &mut OpDat<R> = unsafe { adts.get_mut() };
                simd_adt_sweep::<R, L>(
                    range.start as usize..range.end as usize,
                    mesh,
                    x,
                    q,
                    adt_ref,
                    consts,
                );
            });
        });
        maybe_time(rec, "res_calc", wb, ne, || {
            let ress = SharedMut::new(res);
            pool.colored_blocks(edge_plan.two_level(), n_threads, |_b, range| {
                let res_ref: &mut OpDat<R> = unsafe { ress.get_mut() };
                simd_res_sweep::<R, L>(
                    range.start as usize..range.end as usize,
                    mesh,
                    x,
                    q,
                    adt,
                    res_ref,
                    consts,
                );
            });
        });
        maybe_time(rec, "bres_calc", wb, nb, || {
            seq_loop(0..nb, |be| {
                let n = mesh.bedge2node.row(be);
                let c0 = mesh.bedge2cell.at(be, 0);
                bres_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    adt.row(c0)[0],
                    res.row_mut(c0),
                    case.bound[be],
                    consts,
                );
            });
        });
        maybe_time(rec, "update", wb, nc, || {
            let plan = cell_plan.two_level();
            let (qoldv, qv, resv) = (qold.view(), q.view(), res.view());
            let mut rms_blocks = vec![R::ZERO; plan.blocks.len()];
            {
                let qs = SharedDat::new(&mut q.data);
                let ress = SharedDat::new(&mut res.data);
                let rmss = SharedDat::new(&mut rms_blocks);
                pool.colored_blocks(plan, n_threads, |b, range| {
                    let mut local_v = VecR::<R, L>::zero();
                    let mut local_s = R::ZERO;
                    let sweep = split_sweep(range.start as usize..range.end as usize, L, 0);
                    unsafe {
                        for c in sweep.scalar_items() {
                            update(
                                qold.row(c),
                                qs.slice_mut(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                adt.row(c)[0],
                                &mut local_s,
                            );
                        }
                        for cs in sweep.vector_chunks() {
                            update_chunk::<R, L>(
                                cs,
                                &qold.data,
                                qoldv,
                                qs.slice_mut(0, qs.len()),
                                qv,
                                ress.slice_mut(0, ress.len()),
                                resv,
                                &adt.data,
                                &mut local_v,
                            );
                        }
                        rmss.slice_mut(b, 1)[0] = local_s + local_v.reduce_sum();
                    }
                });
            }
            for v in rms_blocks {
                rms += v;
            }
        });
    }
    sim.normalize_rms(rms.to_f64())
}

// ---------------------------------------------------------------------------
// SIMD res_calc under the three coloring schemes (Fig. 8a)
// ---------------------------------------------------------------------------

/// One iteration where `res_calc` uses the chosen coloring scheme's SIMD
/// execution (other loops as in [`step_simd`]); single-threaded. The
/// permute schemes gather *everything* (including formerly-direct data)
/// through the permutation and use vector scatters, exactly the trade-off
/// §4 describes.
pub fn step_simd_scheme<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    scheme: Scheme,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    // run everything except res_calc via the plain SIMD path by swapping
    // in a no-op res, then execute res_calc per scheme. To keep the
    // physics identical we instead run the full step with a custom
    // res_calc below.
    let wb = R::BYTES;
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());

    maybe_time(rec, "save_soln", wb, nc, || {
        qold.data.copy_from_slice(&q.data);
    });

    let mut rms = R::ZERO;
    for _phase in 0..2 {
        maybe_time(rec, "adt_calc", wb, nc, || {
            simd_adt_sweep::<R, L>(0..nc, mesh, x, q, adt, consts);
        });
        maybe_time(rec, "res_calc", wb, ne, || {
            let gather_group = |group: &[u32], res: &mut OpDat<R>| {
                // process a conflict-free group: chunks of L via index
                // gathers, vector scatter; sub-L tail scalar
                let mut i = 0;
                while i + L <= group.len() {
                    let ids: [usize; L] = std::array::from_fn(|l| group[i + l] as usize);
                    let n0 = IdxVec::<L>::from_array(ids.map(|e| mesh.edge2node.data[e * 2]));
                    let n1 = IdxVec::<L>::from_array(ids.map(|e| mesh.edge2node.data[e * 2 + 1]));
                    let c0 = IdxVec::<L>::from_array(ids.map(|e| mesh.edge2cell.data[e * 2]));
                    let c1 = IdxVec::<L>::from_array(ids.map(|e| mesh.edge2cell.data[e * 2 + 1]));
                    let x1 = [
                        VecR::gather(&x.data, n0, 2, 0),
                        VecR::gather(&x.data, n0, 2, 1),
                    ];
                    let x2 = [
                        VecR::gather(&x.data, n1, 2, 0),
                        VecR::gather(&x.data, n1, 2, 1),
                    ];
                    let q1: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::gather(&q.data, c0, 4, d));
                    let q2: [VecR<R, L>; 4] =
                        std::array::from_fn(|d| VecR::gather(&q.data, c1, 4, d));
                    let a1 = VecR::gather(&adt.data, c0, 1, 0);
                    let a2 = VecR::gather(&adt.data, c1, 1, 0);
                    let mut r1 = [VecR::<R, L>::zero(); 4];
                    let mut r2 = [VecR::<R, L>::zero(); 4];
                    res_calc_vec(&x1, &x2, &q1, &q2, a1, a2, &mut r1, &mut r2, consts);
                    // lanes are independent within a color group: true
                    // vector scatter (IMCI-style), no serialization
                    for d in 0..4 {
                        r1[d].scatter_add(&mut res.data, c0, 4, d);
                        r2[d].scatter_add(&mut res.data, c1, 4, d);
                    }
                    i += L;
                }
                for &eu in &group[i..] {
                    let e = eu as usize;
                    let n = mesh.edge2node.row(e);
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (r1, r2) = two_rows_mut(&mut res.data, 4, c0, c1);
                    res_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        q.row(c0),
                        q.row(c1),
                        adt.row(c0)[0],
                        adt.row(c1)[0],
                        r1,
                        r2,
                        consts,
                    );
                }
            };
            match scheme {
                Scheme::TwoLevel => {
                    simd_res_sweep::<R, L>(0..ne, mesh, x, q, adt, res, consts);
                }
                Scheme::FullPermute => {
                    let plan = cache.get(
                        Scheme::FullPermute,
                        &["edge2cell"],
                        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
                    );
                    let plan = plan.full_permute();
                    for c in 0..plan.coloring.n_colors as usize {
                        let group =
                            &plan.perm[plan.offsets[c] as usize..plan.offsets[c + 1] as usize];
                        gather_group(group, res);
                    }
                }
                Scheme::BlockPermute => {
                    let plan = cache.get(
                        Scheme::BlockPermute,
                        &["edge2cell"],
                        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
                    );
                    let plan = plan.block_permute();
                    for b in 0..plan.blocks.len() {
                        let r = plan.blocks[b].clone();
                        let offs = &plan.color_offsets[b];
                        for c in 0..offs.len() - 1 {
                            let group = &plan.perm[r.start as usize + offs[c] as usize
                                ..r.start as usize + offs[c + 1] as usize];
                            gather_group(group, res);
                        }
                    }
                }
            }
        });
        maybe_time(rec, "bres_calc", wb, nb, || {
            seq_loop(0..nb, |be| {
                let n = mesh.bedge2node.row(be);
                let c0 = mesh.bedge2cell.at(be, 0);
                bres_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    adt.row(c0)[0],
                    res.row_mut(c0),
                    case.bound[be],
                    consts,
                );
            });
        });
        maybe_time(rec, "update", wb, nc, || {
            seq_loop(0..nc, |c| {
                update(
                    qold.row(c),
                    &mut q.data[c * 4..c * 4 + 4],
                    &mut res.data[c * 4..c * 4 + 4],
                    adt.data[c],
                    &mut rms,
                );
            });
        });
    }
    sim.normalize_rms(rms.to_f64())
}

// ---------------------------------------------------------------------------
// fused loop chains — the ump_lazy deferred-execution backend
// ---------------------------------------------------------------------------

/// One iteration recorded as an `ump_lazy` loop chain and executed with
/// cross-loop fusion on the process-wide [`ExecPool`] (threaded shape,
/// `n_threads` team members, `0` = all).
///
/// The nine-loop timestep fuses into seven groups — `save_soln+adt_calc`
/// and `update+adt_calc` share one colored dispatch each (all direct
/// dependencies), `res_calc` stays alone (indirect increment), and the
/// tiny `bres_calc` runs serially — so every step issues two dispatch
/// rounds fewer than [`step_threaded`] while computing identical physics.
pub fn step_fused<R: Real>(
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_fused_on(
        ExecPool::global(),
        sim,
        cache,
        Shape::Threaded,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_fused`] on an explicit pool and execution shape
/// ([`Shape::Threaded`] or the SIMT emulation [`Shape::Simt`]; for the
/// vectorized fused shape use [`step_fused_simd_on`], which pins the
/// lane count at compile time).
pub fn step_fused_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    shape: Shape,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    fused_chain_step::<R, 4>(pool, sim, cache, shape, n_threads, block_size, rec)
}

/// One iteration through the **fused-SIMD** backend: the same recorded
/// chain and union-write-set plans as [`step_fused`], but every pooled
/// loop carries an `L`-lane vector body (gathers through the mesh maps,
/// serialized lane scatters for the colored increment, three-sweep
/// alignment handling) executed via [`Shape::Simd`] — the paper's
/// headline explicit vectorization composed with cross-loop fusion on
/// one dispatch path. Issues exactly as many pool rounds as the fused
/// threaded shape (the plans are shared). Runs on the process-wide
/// [`ExecPool`] capped at `n_threads` members (`0` = all).
pub fn step_fused_simd<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_fused_simd_on::<R, L>(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        block_size,
        rec,
    )
}

/// As [`step_fused_simd`] on an explicit pool.
pub fn step_fused_simd_on<R: Real, const L: usize>(
    pool: &ExecPool,
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    fused_chain_step::<R, L>(
        pool,
        sim,
        cache,
        Shape::Simd { lanes: L },
        n_threads,
        block_size,
        rec,
    )
}

/// The shared fused-chain timestep behind [`step_fused_on`] and
/// [`step_fused_simd_on`]: records the nine-loop iteration with both
/// scalar and `L`-lane vector bodies, so one chain serves every fused
/// shape (scalar bodies under `Threaded`/`Simt`, vector bodies under
/// `Simd { lanes: L }`).
fn fused_chain_step<R: Real, const L: usize>(
    pool: &ExecPool,
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    shape: Shape,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    // shared immutable reborrows: many recorded bodies capture these
    let (x, consts) = (&*x, &*consts);
    // layout-aware accessor views: every x/q/qold/res access in the
    // recorded bodies goes through these, so the one recorded chain
    // executes natively in AoS, SoA or AoSoA storage (dim-1 adt indexes
    // identically in every layout and keeps its direct indexing)
    let (xv, qv, qoldv, resv) = (x.view(), q.view(), qold.view(), res.view());
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());
    let n_cell_blocks = nc.div_ceil(block_size);
    // rms partials: one slot per (phase, cell block), merged in block
    // order after the chain runs — the same deterministic reduction as
    // step_threaded's
    let mut rms_blocks = vec![R::ZERO; 2 * n_cell_blocks];
    {
        let qs = SharedDat::new(&mut q.data);
        let qolds = SharedDat::new(&mut qold.data);
        let adts = SharedDat::new(&mut adt.data);
        let ress = SharedDat::new(&mut res.data);
        let rmss = SharedDat::new(&mut rms_blocks);
        // Per-kernel lane selection, measured on the bench host (see
        // docs/ARCHITECTURE.md §8): once storage is lane-friendly
        // (SoA/AoSoA) every kernel *without* a serialized indirect
        // scatter runs faster vectorized, while the scatter kernels
        // (res_calc, bres_calc) stay scalar — their chunks end in
        // per-lane serial increments that never amortize the gathers.
        // Under AoS the vector bodies pay strided loads everywhere, so
        // the profile-driven Auto decision stands.
        let lane_friendly = xv.layout != ump_simd::Layout::Aos;
        let desc = move |name: &str, n: usize| {
            let d = LoopDesc::new(profile(name), n);
            if !lane_friendly {
                return d;
            }
            let hint = if d.has_indirect_write() {
                ump_lazy::VecHint::Scalar
            } else {
                ump_lazy::VecHint::Vector
            };
            d.with_hint(hint)
        };

        let mut chain = Chain::new("airfoil_step");
        {
            let (qs, qolds) = (&qs, &qolds);
            chain.record_simd(
                desc("save_soln", nc),
                vec![],
                L,
                move |c| unsafe {
                    let row: [R; 4] = qv.load_row(qs.as_slice(), c);
                    qoldv.store_row(qolds.slice_mut(0, qolds.len()), c, &row);
                },
                move |cs| unsafe {
                    // per-component vector copy of L cells (contiguous
                    // moves under SoA / within AoSoA tiles)
                    let src = qs.as_slice();
                    let dst = qolds.slice_mut(0, qolds.len());
                    for d in 0..4 {
                        qoldv.storev(qv.loadv::<R, L>(src, cs, d), dst, cs, d);
                    }
                },
            );
        }
        for phase in 0..2 {
            {
                let (qs, adts) = (&qs, &adts);
                chain.record_simd(
                    desc("adt_calc", nc),
                    vec![],
                    L,
                    move |c| {
                        let n = mesh.cell2node.row(c);
                        let xr: [[R; 2]; 4] =
                            std::array::from_fn(|j| xv.load_row(&x.data, n[j] as usize));
                        let mut a = R::ZERO;
                        unsafe {
                            let qrow: [R; 4] = qv.load_row(qs.as_slice(), c);
                            adt_calc(&xr[0], &xr[1], &xr[2], &xr[3], &qrow, &mut a, consts);
                            adts.slice_mut(c, 1)[0] = a;
                        }
                    },
                    move |cs| unsafe {
                        adt_chunk::<R, L>(
                            cs,
                            &mesh.cell2node.data,
                            &x.data,
                            xv,
                            qs.as_slice(),
                            qv,
                            adts.slice_mut(0, adts.len()),
                            consts,
                        );
                    },
                );
            }
            {
                let (qs, adts, ress) = (&qs, &adts, &ress);
                chain.record_simd_two_phase(
                    desc("res_calc", ne),
                    vec![&mesh.edge2cell],
                    L,
                    move |e| {
                        let n = mesh.edge2node.row(e);
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let xa: [R; 2] = xv.load_row(&x.data, n[0] as usize);
                        let xb: [R; 2] = xv.load_row(&x.data, n[1] as usize);
                        let mut r1 = [R::ZERO; 4];
                        let mut r2 = [R::ZERO; 4];
                        unsafe {
                            let q1: [R; 4] = qv.load_row(qs.as_slice(), c0);
                            let q2: [R; 4] = qv.load_row(qs.as_slice(), c1);
                            res_calc(
                                &xa,
                                &xb,
                                &q1,
                                &q2,
                                adts.slice(c0, 1)[0],
                                adts.slice(c1, 1)[0],
                                &mut r1,
                                &mut r2,
                                consts,
                            );
                        }
                        (c0, r1, c1, r2)
                    },
                    move |_e, inc| unsafe {
                        // same accumulation order as apply_edge_inc (c0's
                        // row then c1's, components ascending), through
                        // the layout view
                        let r = ress.slice_mut(0, ress.len());
                        let (c0, r1, c1, r2) = inc;
                        resv.add_row(r, *c0, r1);
                        resv.add_row(r, *c1, r2);
                    },
                    move |es| unsafe {
                        // one aligned chunk: gather, vector flux kernel,
                        // serialized lane scatter (block-exclusive under
                        // the group plan's coloring)
                        res_chunk::<R, L>(
                            es,
                            &mesh.edge2node.data,
                            &mesh.edge2cell.data,
                            &x.data,
                            xv,
                            qs.as_slice(),
                            qv,
                            adts.as_slice(),
                            ress.slice_mut(0, ress.len()),
                            resv,
                            consts,
                        );
                    },
                );
            }
            {
                let (qs, adts, ress) = (&qs, &adts, &ress);
                let bound = &case.bound;
                chain.record_seq(desc("bres_calc", nb), move || {
                    for be in 0..nb {
                        let n = mesh.bedge2node.row(be);
                        let c0 = mesh.bedge2cell.at(be, 0);
                        let xa: [R; 2] = xv.load_row(&x.data, n[0] as usize);
                        let xb: [R; 2] = xv.load_row(&x.data, n[1] as usize);
                        unsafe {
                            let qrow: [R; 4] = qv.load_row(qs.as_slice(), c0);
                            let r = ress.slice_mut(0, ress.len());
                            let mut rrow: [R; 4] = resv.load_row(r, c0);
                            bres_calc(
                                &xa,
                                &xb,
                                &qrow,
                                adts.slice(c0, 1)[0],
                                &mut rrow,
                                bound[be],
                                consts,
                            );
                            resv.store_row(r, c0, &rrow);
                        }
                    }
                });
            }
            {
                let (qs, qolds, adts, ress, rmss) = (&qs, &qolds, &adts, &ress, &rmss);
                // rms partials land in one (phase, block) slot each; both
                // recordings below produce the same deterministic
                // block-order reduction as step_threaded
                if let Shape::Simd { .. } = shape {
                    // SIMD shape: per-chunk fold into the block slot (a
                    // block executes on one thread, so the in-place `+=`
                    // through the shared view is race-free; the slot is
                    // touched once per chunk, not once per element)
                    chain.record_simd(
                        desc("update", nc),
                        vec![],
                        L,
                        move |c| unsafe {
                            let mut local = R::ZERO;
                            let qold_row: [R; 4] = qoldv.load_row(qolds.as_slice(), c);
                            let mut q_row = [R::ZERO; 4];
                            let r = ress.slice_mut(0, ress.len());
                            let mut res_row: [R; 4] = resv.load_row(r, c);
                            update(
                                &qold_row,
                                &mut q_row,
                                &mut res_row,
                                adts.slice(c, 1)[0],
                                &mut local,
                            );
                            qv.store_row(qs.slice_mut(0, qs.len()), c, &q_row);
                            resv.store_row(r, c, &res_row);
                            let slot = phase * n_cell_blocks + c / block_size;
                            rmss.slice_mut(slot, 1)[0] += local;
                        },
                        move |cs| unsafe {
                            let mut local_v = VecR::<R, L>::zero();
                            update_chunk::<R, L>(
                                cs,
                                qolds.as_slice(),
                                qoldv,
                                qs.slice_mut(0, qs.len()),
                                qv,
                                ress.slice_mut(0, ress.len()),
                                resv,
                                adts.as_slice(),
                                &mut local_v,
                            );
                            let slot = phase * n_cell_blocks + cs / block_size;
                            rmss.slice_mut(slot, 1)[0] += local_v.reduce_sum();
                        },
                    );
                } else {
                    // scalar shapes: accumulate in a register over the
                    // whole block, one store per block (the hot fused-
                    // threaded path measured in BENCH_fusion.json)
                    chain.record_blocks(desc("update", nc), vec![], move |b, range| {
                        let mut local = R::ZERO;
                        for c in range.start as usize..range.end as usize {
                            unsafe {
                                let qold_row: [R; 4] = qoldv.load_row(qolds.as_slice(), c);
                                let mut q_row = [R::ZERO; 4];
                                let r = ress.slice_mut(0, ress.len());
                                let mut res_row: [R; 4] = resv.load_row(r, c);
                                update(
                                    &qold_row,
                                    &mut q_row,
                                    &mut res_row,
                                    adts.slice(c, 1)[0],
                                    &mut local,
                                );
                                qv.store_row(qs.slice_mut(0, qs.len()), c, &q_row);
                                resv.store_row(r, c, &res_row);
                            }
                        }
                        unsafe { rmss.slice_mut(phase * n_cell_blocks + b, 1)[0] = local };
                    });
                }
            }
        }
        chain.execute(pool, cache, shape, n_threads, block_size, R::BYTES, rec);
    }
    let mut rms = R::ZERO;
    for v in rms_blocks {
        rms += v;
    }
    sim.normalize_rms(rms.to_f64())
}

// ---------------------------------------------------------------------------
// SIMT (OpenCL-on-CPU) emulation — paper Fig. 3a
// ---------------------------------------------------------------------------

/// One iteration through the SIMT emulation: work-groups = colored
/// blocks, lock-step work-items, private increments applied in element
/// color order. `sched_overhead_ns` models the OpenCL work-group
/// scheduling cost (0 = ideal runtime). Runs on the process-wide
/// [`ExecPool`] capped at `n_threads` members (`0` = all).
pub fn step_simt<R: Real>(
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    step_simt_on(
        ExecPool::global(),
        sim,
        cache,
        global_pool_cap(n_threads),
        simt_width,
        sched_overhead_ns,
        block_size,
        rec,
    )
}

/// As [`step_simt`] on an explicit pool.
#[allow(clippy::too_many_arguments)]
pub fn step_simt_on<R: Real>(
    pool: &ExecPool,
    sim: &mut Airfoil<R>,
    cache: &PlanCache,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let wb = R::BYTES;
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());

    let cell_plan = cache.get(
        Scheme::TwoLevel,
        &[],
        &PlanInputs::new(nc, vec![], block_size),
    );
    let edge_plan = cache.get(
        Scheme::TwoLevel,
        &["edge2cell"],
        &PlanInputs::new(ne, vec![&mesh.edge2cell], block_size),
    );

    maybe_time(rec, "save_soln", wb, nc, || {
        let qolds = SharedDat::new(&mut qold.data);
        pool.simt_colored(
            cell_plan.two_level(),
            n_threads,
            simt_width,
            sched_overhead_ns,
            |c| std::array::from_fn::<R, 4, _>(|d| q.data[c * 4 + d]),
            |c, vals| unsafe {
                qolds.slice_mut(c * 4, 4).copy_from_slice(vals);
            },
        );
    });

    let mut rms = R::ZERO;
    for _phase in 0..2 {
        maybe_time(rec, "adt_calc", wb, nc, || {
            let adts = SharedDat::new(&mut adt.data);
            pool.simt_colored(
                cell_plan.two_level(),
                n_threads,
                simt_width,
                sched_overhead_ns,
                |c| {
                    let n = mesh.cell2node.row(c);
                    let mut a = R::ZERO;
                    adt_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        x.row(n[2] as usize),
                        x.row(n[3] as usize),
                        q.row(c),
                        &mut a,
                        consts,
                    );
                    a
                },
                |c, a| unsafe {
                    adts.slice_mut(c, 1)[0] = *a;
                },
            );
        });
        maybe_time(rec, "res_calc", wb, ne, || {
            let ress = SharedDat::new(&mut res.data);
            pool.simt_colored(
                edge_plan.two_level(),
                n_threads,
                simt_width,
                sched_overhead_ns,
                |e| {
                    // compute phase: private accumulators (arg_l in Fig 3a)
                    let n = mesh.edge2node.row(e);
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let mut r1 = [R::ZERO; 4];
                    let mut r2 = [R::ZERO; 4];
                    res_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        q.row(c0),
                        q.row(c1),
                        adt.row(c0)[0],
                        adt.row(c1)[0],
                        &mut r1,
                        &mut r2,
                        consts,
                    );
                    (c0, r1, c1, r2)
                },
                // colored increment phase
                |_e, inc| unsafe { apply_edge_inc(&ress, inc) },
            );
        });
        maybe_time(rec, "bres_calc", wb, nb, || {
            seq_loop(0..nb, |be| {
                let n = mesh.bedge2node.row(be);
                let c0 = mesh.bedge2cell.at(be, 0);
                bres_calc(
                    x.row(n[0] as usize),
                    x.row(n[1] as usize),
                    q.row(c0),
                    adt.row(c0)[0],
                    res.row_mut(c0),
                    case.bound[be],
                    consts,
                );
            });
        });
        maybe_time(rec, "update", wb, nc, || {
            let plan = cell_plan.two_level();
            let mut rms_blocks = vec![R::ZERO; plan.blocks.len()];
            {
                let qs = SharedDat::new(&mut q.data);
                let ress = SharedDat::new(&mut res.data);
                let rmss = SharedDat::new(&mut rms_blocks);
                pool.colored_blocks(plan, n_threads, |b, range| {
                    let mut local = R::ZERO;
                    for c in range.start as usize..range.end as usize {
                        unsafe {
                            update(
                                qold.row(c),
                                qs.slice_mut(c * 4, 4),
                                ress.slice_mut(c * 4, 4),
                                adt.row(c)[0],
                                &mut local,
                            );
                        }
                    }
                    unsafe { rmss.slice_mut(b, 1)[0] = local };
                });
            }
            for v in rms_blocks {
                rms += v;
            }
        });
    }
    sim.normalize_rms(rms.to_f64())
}

// ---------------------------------------------------------------------------
// cross-timestep sparse tiling
// ---------------------------------------------------------------------------

/// Default anchor-blocks-per-tile of the registry dispatcher's tiled
/// arms: `tile_cells = DISPATCH_TILE_BLOCKS × block_size`.
pub const DISPATCH_TILE_BLOCKS: usize = 4;

/// Record `steps` outer iterations as one tiled super-chain
/// ([`ump_lazy::TiledChain`]) and sweep it tile-by-tile: every tile of
/// `tile_cells` cells executes all loops of all `steps` — with the
/// dependency-cone fringe computed redundantly — before the next tile
/// starts, so its working set stays cache-resident across timesteps.
/// Returns the per-step normalized RMS residuals.
///
/// Determinism: each tile runs its cone in ascending element order, so
/// cell state is bit-identical to [`step_seq`] for any `tile_cells`,
/// `steps` or team size; the rms reduction accumulates per
/// `(step, phase, cell-block)` partials (ownership is block-aligned, so
/// each slot belongs to one tile) folded in slot order — the same
/// block-ordered fold as the fused drivers. Tiled execution is defined
/// on AoS rows; other layouts are shimmed through AoS like the rest of
/// the non-fused backends.
pub fn run_tiled_on<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    pool: &ExecPool,
    n_threads: usize,
    steps: usize,
    tile_cells: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> Vec<f64> {
    run_tiled_report_on::<R, L>(sim, pool, n_threads, steps, tile_cells, block_size, rec).0
}

/// [`run_tiled_on`] returning the executor's [`TileReport`] alongside
/// the history — the bench harness reads the measured redundant-compute
/// fraction and copy traffic from it.
pub fn run_tiled_report_on<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    pool: &ExecPool,
    n_threads: usize,
    steps: usize,
    tile_cells: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> (Vec<f64>, TileReport) {
    let layout = sim.layout();
    if layout != Layout::Aos {
        sim.set_layout(Layout::Aos);
        let out =
            run_tiled_report_on::<R, L>(sim, pool, n_threads, steps, tile_cells, block_size, rec);
        sim.set_layout(layout);
        return out;
    }
    let Airfoil {
        case,
        consts,
        x,
        q,
        qold,
        adt,
        res,
    } = sim;
    let mesh = &case.mesh;
    let bound = &case.bound;
    let (x, consts) = (&*x, &*consts);
    let (nc, ne, nb) = (mesh.n_cells(), mesh.n_edges(), mesh.n_bedges());
    let ncb = nc.div_ceil(block_size);
    // rms partials: one slot per (step, phase, cell block), written only
    // for owned cells, folded per step after the sweep
    let mut rms_parts = vec![R::ZERO; steps * 2 * ncb];
    let report;
    {
        let rmss = SharedDat::new(&mut rms_parts);
        let rmss = &rmss;
        let mut chain = TiledChain::new("airfoil_tiled");
        chain.register_set("cells", nc);
        chain.register_set("edges", ne);
        chain.register_set("bedges", nb);
        chain.register_map(&mesh.edge2cell);
        chain.register_map(&mesh.bedge2cell);
        let qd = chain.register_dat("q", "cells", 4, &mut q.data);
        let qod = chain.register_dat("qold", "cells", 4, &mut qold.data);
        let ad = chain.register_dat("adt", "cells", 1, &mut adt.data);
        let rd = chain.register_dat("res", "cells", 4, &mut res.data);
        for s in 0..steps {
            chain.begin_step();
            chain.record_vec(
                LoopDesc::new(profile("save_soln"), nc),
                move |ctx, c| {
                    let q = ctx.dat(qd);
                    let qold = unsafe { ctx.dat_mut(qod) };
                    save_soln(&q[c * 4..c * 4 + 4], &mut qold[c * 4..c * 4 + 4]);
                },
                move |ctx, start, len| {
                    // per-component lane moves over the run, scalar tail
                    // (a pure copy: bit-identical to the scalar body)
                    let q = ctx.dat(qd);
                    let qold = unsafe { ctx.dat_mut(qod) };
                    let (mut c, end) = (start, start + len);
                    while c + L <= end {
                        for j in 0..4 {
                            let v = VecR::<R, L>::from_fn(|l| q[(c + l) * 4 + j]);
                            for l in 0..L {
                                qold[(c + l) * 4 + j] = v.lane(l);
                            }
                        }
                        c += L;
                    }
                    while c < end {
                        save_soln(&q[c * 4..c * 4 + 4], &mut qold[c * 4..c * 4 + 4]);
                        c += 1;
                    }
                },
            );
            for phase in 0..2 {
                chain.record(LoopDesc::new(profile("adt_calc"), nc), move |ctx, c| {
                    let n = mesh.cell2node.row(c);
                    let q = ctx.dat(qd);
                    let mut a = R::ZERO;
                    adt_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        x.row(n[2] as usize),
                        x.row(n[3] as usize),
                        &q[c * 4..c * 4 + 4],
                        &mut a,
                        consts,
                    );
                    unsafe { ctx.dat_mut(ad)[c] = a };
                });
                chain.record(LoopDesc::new(profile("res_calc"), ne), move |ctx, e| {
                    let n = mesh.edge2node.row(e);
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let q = ctx.dat(qd);
                    let adt = ctx.dat(ad);
                    let res = unsafe { ctx.dat_mut(rd) };
                    let (r1, r2) = two_rows_mut(res, 4, c0, c1);
                    res_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        &q[c0 * 4..c0 * 4 + 4],
                        &q[c1 * 4..c1 * 4 + 4],
                        adt[c0],
                        adt[c1],
                        r1,
                        r2,
                        consts,
                    );
                });
                chain.record(LoopDesc::new(profile("bres_calc"), nb), move |ctx, be| {
                    let n = mesh.bedge2node.row(be);
                    let c0 = mesh.bedge2cell.at(be, 0);
                    let q = ctx.dat(qd);
                    let adt = ctx.dat(ad);
                    let res = unsafe { ctx.dat_mut(rd) };
                    bres_calc(
                        x.row(n[0] as usize),
                        x.row(n[1] as usize),
                        &q[c0 * 4..c0 * 4 + 4],
                        adt[c0],
                        &mut res[c0 * 4..c0 * 4 + 4],
                        bound[be],
                        consts,
                    );
                });
                chain.record(LoopDesc::new(profile("update"), nc), move |ctx, c| {
                    let qold = ctx.dat(qod);
                    let adt = ctx.dat(ad);
                    let q = unsafe { ctx.dat_mut(qd) };
                    let res = unsafe { ctx.dat_mut(rd) };
                    let mut local = R::ZERO;
                    update(
                        &qold[c * 4..c * 4 + 4],
                        &mut q[c * 4..c * 4 + 4],
                        &mut res[c * 4..c * 4 + 4],
                        adt[c],
                        &mut local,
                    );
                    // fringe cells recompute state but their owner tile
                    // contributes their rms partial
                    if ctx.owned(c) {
                        let slot = (s * 2 + phase) * ncb + c / block_size;
                        unsafe { rmss.slice_mut(slot, 1)[0] += local };
                    }
                });
            }
        }
        let sched = chain.schedule(tile_cells, block_size);
        report = chain.execute(pool, &sched, n_threads, L, R::BYTES, rec);
    }
    let hist = (0..steps)
        .map(|s| {
            let mut rms = R::ZERO;
            for v in &rms_parts[s * 2 * ncb..(s + 1) * 2 * ncb] {
                rms += *v;
            }
            sim.normalize_rms(rms.to_f64())
        })
        .collect();
    (hist, report)
}

/// One iteration through the tiled executor (a 1-step super-chain) —
/// the registry dispatcher's `tiled` arm. Multi-step harnesses call
/// [`run_tiled_on`] directly.
pub fn step_tiled_on<R: Real>(
    sim: &mut Airfoil<R>,
    pool: &ExecPool,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let tile_cells = DISPATCH_TILE_BLOCKS * block_size;
    run_tiled_on::<R, 1>(sim, pool, n_threads, 1, tile_cells, block_size, rec)[0]
}

/// The `tiled_simd{L}` arm: tiled sweep with `L`-lane run bodies on the
/// direct copy loops.
pub fn step_tiled_simd_on<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    pool: &ExecPool,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    let tile_cells = DISPATCH_TILE_BLOCKS * block_size;
    run_tiled_on::<R, L>(sim, pool, n_threads, 1, tile_cells, block_size, rec)[0]
}

// ---------------------------------------------------------------------------
// the unified dispatcher — one entry point per execution shape
// ---------------------------------------------------------------------------

/// Simt lock-step width used by the registry dispatcher (the unfused and
/// fused SIMT shapes alike); the paper's OpenCL work-group sub-width.
pub const DISPATCH_SIMT_WIDTH: usize = 8;

/// One iteration through any registered [`Backend`], on an explicit pool
/// — the single dispatcher behind the conformance matrix and the `repro`
/// backend sweep. Backends with `needs_pool() == false` ignore `pool`
/// and `n_threads`; lane-carrying backends are dispatched to the const
/// instantiations the registry lists (L = 4 and 8) and panic, naming the
/// backend, for any other width.
pub fn step_on<R: Real>(
    backend: Backend,
    sim: &mut Airfoil<R>,
    pool: &ExecPool,
    cache: &PlanCache,
    n_threads: usize,
    block_size: usize,
    rec: Option<&Recorder>,
) -> f64 {
    // the fused chain executes natively in any layout; every other
    // backend is written against the canonical AoS storage — convert,
    // run, convert back (a pure index permutation, bit-exact at any
    // precision, so the conformance bounds are unchanged)
    let layout = sim.layout();
    if layout != Layout::Aos
        && !matches!(
            backend,
            Backend::Fused | Backend::FusedSimt | Backend::FusedSimd { .. }
        )
    {
        sim.set_layout(Layout::Aos);
        let out = step_on(backend, sim, pool, cache, n_threads, block_size, rec);
        sim.set_layout(layout);
        return out;
    }
    match backend {
        Backend::Seq => step_seq(sim, rec),
        Backend::Threaded => step_threaded_on(pool, sim, cache, n_threads, block_size, rec),
        Backend::Simd { lanes: 4 } => step_simd::<R, 4>(sim, rec),
        Backend::Simd { lanes: 8 } => step_simd::<R, 8>(sim, rec),
        Backend::SimdThreaded { lanes: 4 } => {
            step_simd_threaded_on::<R, 4>(pool, sim, cache, n_threads, block_size, rec)
        }
        Backend::SimdThreaded { lanes: 8 } => {
            step_simd_threaded_on::<R, 8>(pool, sim, cache, n_threads, block_size, rec)
        }
        Backend::SimdScheme { scheme } => {
            step_simd_scheme::<R, 4>(sim, cache, scheme, block_size, rec)
        }
        Backend::Simt => step_simt_on(
            pool,
            sim,
            cache,
            n_threads,
            DISPATCH_SIMT_WIDTH,
            0,
            block_size,
            rec,
        ),
        Backend::Fused => step_fused_on(
            pool,
            sim,
            cache,
            Shape::Threaded,
            n_threads,
            block_size,
            rec,
        ),
        Backend::FusedSimt => step_fused_on(
            pool,
            sim,
            cache,
            Shape::Simt {
                width: DISPATCH_SIMT_WIDTH,
                sched_overhead_ns: 0,
            },
            n_threads,
            block_size,
            rec,
        ),
        Backend::FusedSimd { lanes: 4 } => {
            step_fused_simd_on::<R, 4>(pool, sim, cache, n_threads, block_size, rec)
        }
        Backend::FusedSimd { lanes: 8 } => {
            step_fused_simd_on::<R, 8>(pool, sim, cache, n_threads, block_size, rec)
        }
        // distributed backends: ranks own their pools; the caller's pool
        // and n_threads are unused (needs_pool() is false)
        Backend::MpiFused => super::mpi::step_mpi_fused::<R, 4>(
            sim,
            backend.ranks(),
            block_size,
            Shape::Threaded,
            rec,
        ),
        Backend::MpiFusedSimd { lanes: 4 } => super::mpi::step_mpi_fused::<R, 4>(
            sim,
            backend.ranks(),
            block_size,
            Shape::Simd { lanes: 4 },
            rec,
        ),
        Backend::MpiFusedSimd { lanes: 8 } => super::mpi::step_mpi_fused::<R, 8>(
            sim,
            backend.ranks(),
            block_size,
            Shape::Simd { lanes: 8 },
            rec,
        ),
        Backend::Tiled => step_tiled_on(sim, pool, n_threads, block_size, rec),
        Backend::TiledSimd { lanes: 4 } => {
            step_tiled_simd_on::<R, 4>(sim, pool, n_threads, block_size, rec)
        }
        Backend::TiledSimd { lanes: 8 } => {
            step_tiled_simd_on::<R, 8>(sim, pool, n_threads, block_size, rec)
        }
        other => panic!(
            "backend {} has no compiled lane instantiation — add it to step_on",
            other.name()
        ),
    }
}
