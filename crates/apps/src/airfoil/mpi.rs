//! The Airfoil message-passing backend: partition → distribute → SPMD
//! ranks with halo exchanges and redundant exec-halo execution (paper §3,
//! §6.5's MPI and MPI+OpenMP configurations).
//!
//! Per-rank iteration (matching `op_mpi_halo_exchanges` placement in the
//! generated code of paper Fig. 2b):
//!
//! ```text
//! save_soln  over owned cells
//! 2 × { adt_calc over owned cells
//!       halo-exchange q, adt (owners → ghosts)
//!       res_calc over ALL local edges (owned + redundantly executed)
//!       bres_calc over owned boundary edges
//!       update over owned cells, Σ rms allreduced }
//! ```
//!
//! Increments into ghost cells are discarded (the owner computes them via
//! its own copy of the boundary edge); ghost `res` rows are re-zeroed
//! after each phase so they cannot grow unboundedly.
//!
//! The production path is [`RankState::step_fused_chain`]: the rank's
//! iteration recorded as an `ump_lazy` chain whose halo exchanges are
//! non-blocking — `res_calc`'s **interior** colored blocks (edges whose
//! cells are both owned) execute while the `q`/`adt` messages are in
//! flight, the exchanges complete, and only the **boundary** blocks
//! (edges reading a ghost cell, [`LocalMesh::boundary_edges`]) wait for
//! the data. Reductions merge through the rank-ordered bit-reproducible
//! allreduce. [`run_mpi_fused`] drives it end to end at any rank count,
//! in threaded or `L`-lane SIMD shape, with overlap or blocking
//! exchanges (same compute order — bit-identical results; the halo
//! bench compares wall time). The scalar [`RankState::step`] and hybrid
//! [`RankState::step_hybrid`] remain as references.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ump_core::{
    distribute, extract_rows, ExecPool, LocalMesh, OpDat, PlanCache, Recorder, SharedDat,
};
use ump_fault::FaultInjector;
use ump_lazy::{Chain, ExchangePolicy, LoopDesc, Shape};
use ump_mesh::generators::AirfoilCase;
use ump_minimpi::{Comm, ExchangeGuard, PendingExchange, Universe};
use ump_part::{rcb, Partition};
use ump_simd::{Real, VecR};

use crate::resilience::{resilient_loop, ResilientReport};

use super::drivers; // scalar kernels reused through the local meshes
use super::kernels::{adt_calc, bres_calc, res_calc, save_soln, update};
use super::{profile, Airfoil, Consts};

/// A rank-local Airfoil state.
pub struct RankState<R: Real> {
    /// The rank's mesh piece.
    pub local: LocalMesh,
    /// Boundary tags of the rank's bedges.
    pub bound: Vec<i32>,
    /// Halo classification of the rank's executed edges: `true` for
    /// edges reading a ghost cell (deferred until the exchange finishes
    /// in the overlap schedule).
    pub edge_halo: Vec<bool>,
    /// Node coordinates (replicated where referenced).
    pub x: OpDat<R>,
    /// Flow state (owned + ghost cells).
    pub q: OpDat<R>,
    /// Saved state.
    pub qold: OpDat<R>,
    /// Local timestep.
    pub adt: OpDat<R>,
    /// Residuals.
    pub res: OpDat<R>,
    /// Constants.
    pub consts: Consts<R>,
}

impl<R: Real> RankState<R> {
    /// Build a rank's state from the global case and its mesh piece.
    pub fn new(case: &AirfoilCase, local: LocalMesh) -> RankState<R> {
        let consts = Consts::<R>::default();
        let n_cells = local.mesh.n_cells();
        let x = OpDat::from_fn("x", local.mesh.n_nodes(), 2, |n| {
            let [px, py] = local.mesh.node_xy[n];
            vec![R::from_f64(px), R::from_f64(py)]
        });
        let q = OpDat::from_fn("q", n_cells, 4, |_| consts.qinf.to_vec());
        let bound: Vec<i32> = local
            .bedge_global
            .iter()
            .map(|&gbe| case.bound[gbe as usize])
            .collect();
        RankState {
            bound,
            edge_halo: local.boundary_edges(),
            x,
            q,
            qold: OpDat::zeros("qold", n_cells, 4),
            adt: OpDat::zeros("adt", n_cells, 1),
            res: OpDat::zeros("res", n_cells, 4),
            consts,
            local,
        }
    }

    /// One iteration on this rank; returns the global normalized RMS.
    pub fn step(&mut self, comm: &Comm, total_cells: usize, rec: Option<&Recorder>) -> f64 {
        let mesh = &self.local.mesh;
        let n_owned = self.local.n_owned_cells;
        let time = |rec: Option<&Recorder>, name: &str, n: usize, f: &mut dyn FnMut()| match rec {
            Some(r) => r.time(&super::profile(name), R::BYTES, n, f),
            None => f(),
        };

        time(rec, "save_soln", n_owned, &mut || {
            for c in 0..n_owned {
                let (q, qold) = (&self.q, &mut self.qold);
                save_soln(q.row(c), qold.row_mut(c));
            }
        });

        let mut rms = R::ZERO;
        for phase in 0..2u64 {
            time(rec, "adt_calc", n_owned, &mut || {
                for c in 0..n_owned {
                    let n = mesh.cell2node.row(c);
                    let mut a = R::ZERO;
                    adt_calc(
                        self.x.row(n[0] as usize),
                        self.x.row(n[1] as usize),
                        self.x.row(n[2] as usize),
                        self.x.row(n[3] as usize),
                        self.q.row(c),
                        &mut a,
                        &self.consts,
                    );
                    self.adt.row_mut(c)[0] = a;
                }
            });
            // halo exchanges: ghosts of q and adt are stale (update /
            // adt_calc ran on owned only)
            self.local
                .cell_halo
                .execute(comm, &mut self.q.data, 4, phase * 2);
            self.local
                .cell_halo
                .execute(comm, &mut self.adt.data, 1, phase * 2 + 1);

            time(rec, "res_calc", mesh.n_edges(), &mut || {
                for e in 0..mesh.n_edges() {
                    let n = mesh.edge2node.row(e);
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (r1, r2) = drivers::two_rows_mut(&mut self.res.data, 4, c0, c1);
                    res_calc(
                        self.x.row(n[0] as usize),
                        self.x.row(n[1] as usize),
                        self.q.row(c0),
                        self.q.row(c1),
                        self.adt.row(c0)[0],
                        self.adt.row(c1)[0],
                        r1,
                        r2,
                        &self.consts,
                    );
                }
            });
            time(rec, "bres_calc", mesh.n_bedges(), &mut || {
                for be in 0..mesh.n_bedges() {
                    let n = mesh.bedge2node.row(be);
                    let c0 = mesh.bedge2cell.at(be, 0);
                    bres_calc(
                        self.x.row(n[0] as usize),
                        self.x.row(n[1] as usize),
                        self.q.row(c0),
                        self.adt.row(c0)[0],
                        self.res.row_mut(c0),
                        self.bound[be],
                        &self.consts,
                    );
                }
            });
            time(rec, "update", n_owned, &mut || {
                for c in 0..n_owned {
                    let (qold, q, res, adt) = (&self.qold, &mut self.q, &mut self.res, &self.adt);
                    update(
                        qold.row(c),
                        q.row_mut(c),
                        res.row_mut(c),
                        adt.row(c)[0],
                        &mut rms,
                    );
                }
                // discard ghost increments (owners recompute them)
                for v in &mut self.res.data[n_owned * 4..] {
                    *v = R::ZERO;
                }
            });
        }
        let global = comm.allreduce_sum(rms.to_f64());
        (global / total_cells as f64).sqrt()
    }
}

/// Run `iters` iterations of Airfoil across `n_ranks` message-passing
/// ranks. Returns the assembled global flow state and the per-iteration
/// RMS history (identical on every rank).
pub fn run_mpi<R: Real>(
    case: &AirfoilCase,
    n_ranks: usize,
    iters: usize,
    rec: Option<&Recorder>,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    run_mpi_with_partition(case, &partition, iters, rec)
}

/// As [`run_mpi`] with an explicit partition (used by tests to stress odd
/// partitions).
pub fn run_mpi_with_partition<R: Real>(
    case: &AirfoilCase,
    partition: &Partition,
    iters: usize,
    rec: Option<&Recorder>,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let locals = distribute(mesh, partition);
    let total_cells = mesh.n_cells();
    let n_ranks = partition.n_parts as usize;

    let results = Universe::new(n_ranks).run(|comm| {
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(iters);
        for _ in 0..iters {
            history.push(state.step(comm, total_cells, rec));
        }
        (
            state.q.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let q = OpDat::from_vec(
        "q",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (q, history)
}

impl<R: Real> RankState<R> {
    /// One iteration with threads × SIMD *inside* the rank — the hybrid
    /// MPI+OpenMP vectorized configuration that wins on the Phi
    /// (paper §6.5, Fig. 8b's tuning subject). Same communication
    /// pattern as [`RankState::step`]; compute loops run through the
    /// rank's persistent [`ExecPool`] with `L`-lane
    /// sweeps per block (one pool per rank, so ranks never contend on a
    /// shared dispatcher).
    pub fn step_hybrid<const L: usize>(
        &mut self,
        comm: &Comm,
        cache: &ump_core::PlanCache,
        pool: &ump_core::ExecPool,
        block_size: usize,
        total_cells: usize,
    ) -> f64 {
        use ump_color::PlanInputs;
        use ump_core::{Scheme, SharedMut};
        let n_threads = 0; // the whole per-rank team

        let n_owned = self.local.n_owned_cells;
        let n_edges = self.local.mesh.n_edges();
        let cell_plan = cache.get(
            Scheme::TwoLevel,
            &[],
            &PlanInputs::new(n_owned, vec![], block_size),
        );
        let edge_plan = cache.get(
            Scheme::TwoLevel,
            &["edge2cell"],
            &PlanInputs::new(n_edges, vec![&self.local.mesh.edge2cell], block_size),
        );

        // save_soln over owned cells (vector copy per block)
        {
            let (q, qold) = (&self.q, SharedMut::new(&mut self.qold));
            pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| {
                let (s, e) = (range.start as usize * 4, range.end as usize * 4);
                unsafe { qold.get_mut().data[s..e].copy_from_slice(&q.data[s..e]) };
            });
        }

        let mut rms = R::ZERO;
        for phase in 0..2u64 {
            {
                let mesh = &self.local.mesh;
                let (x, q, consts) = (&self.x, &self.q, &self.consts);
                let adt = SharedMut::new(&mut self.adt);
                pool.colored_blocks(cell_plan.two_level(), n_threads, |_b, range| unsafe {
                    drivers::simd_adt_sweep::<R, L>(
                        range.start as usize..range.end as usize,
                        mesh,
                        x,
                        q,
                        adt.get_mut(),
                        consts,
                    );
                });
            }
            self.local
                .cell_halo
                .execute(comm, &mut self.q.data, 4, phase * 2);
            self.local
                .cell_halo
                .execute(comm, &mut self.adt.data, 1, phase * 2 + 1);
            {
                let mesh = &self.local.mesh;
                let (x, q, adt, consts) = (&self.x, &self.q, &self.adt, &self.consts);
                let res = SharedMut::new(&mut self.res);
                pool.colored_blocks(edge_plan.two_level(), n_threads, |_b, range| unsafe {
                    drivers::simd_res_sweep::<R, L>(
                        range.start as usize..range.end as usize,
                        mesh,
                        x,
                        q,
                        adt,
                        res.get_mut(),
                        consts,
                    );
                });
            }
            for be in 0..self.local.mesh.n_bedges() {
                let n = self.local.mesh.bedge2node.row(be);
                let c0 = self.local.mesh.bedge2cell.at(be, 0);
                bres_calc(
                    self.x.row(n[0] as usize),
                    self.x.row(n[1] as usize),
                    self.q.row(c0),
                    self.adt.row(c0)[0],
                    self.res.row_mut(c0),
                    self.bound[be],
                    &self.consts,
                );
            }
            // update over owned cells with deterministic per-block rms
            {
                let plan = cell_plan.two_level();
                let mut rms_blocks = vec![R::ZERO; plan.blocks.len()];
                {
                    let (qold, adt) = (&self.qold, &self.adt);
                    let q = SharedMut::new(&mut self.q);
                    let res = SharedMut::new(&mut self.res);
                    let rmss = SharedMut::new(&mut rms_blocks);
                    pool.colored_blocks(plan, n_threads, |b, range| {
                        let mut local = R::ZERO;
                        for c in range.start as usize..range.end as usize {
                            unsafe {
                                update(
                                    qold.row(c),
                                    q.get_mut().row_mut(c),
                                    res.get_mut().row_mut(c),
                                    adt.row(c)[0],
                                    &mut local,
                                );
                            }
                        }
                        unsafe { rmss.get_mut()[b] = local };
                    });
                }
                for v in rms_blocks {
                    rms += v;
                }
                for v in &mut self.res.data[n_owned * 4..] {
                    *v = R::ZERO;
                }
            }
        }
        let global = comm.allreduce_sum(rms.to_f64());
        (global / total_cells as f64).sqrt()
    }
}

/// Run the hybrid (ranks × threads × SIMD) backend end to end.
pub fn run_mpi_hybrid<R: Real, const L: usize>(
    case: &AirfoilCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    iters: usize,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = Universe::new(n_ranks).run(|comm| {
        let cache = ump_core::PlanCache::new();
        // one persistent team per rank, created once and reused for
        // every color round of every iteration
        let pool = ump_core::ExecPool::new(threads_per_rank);
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(iters);
        for _ in 0..iters {
            history.push(state.step_hybrid::<L>(comm, &cache, &pool, block_size, total_cells));
        }
        (
            state.q.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let q = OpDat::from_vec(
        "q",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (q, history)
}

impl<R: Real> RankState<R> {
    /// One iteration as a rank-local **fused chain with halo/compute
    /// overlap** — the distributed production path. The chain records
    /// the same fused groups as the shared-memory
    /// `drivers::step_fused_simd` (save_soln+adt_calc and
    /// update+adt_calc share one colored dispatch each), plus the halo
    /// exchanges as non-blocking chain entries:
    ///
    /// ```text
    /// [save_soln + adt_calc]        owned cells, interior
    /// exch(q), exch(adt)            sends posted, finish deferred
    /// res_calc                      interior blocks → finish → boundary blocks
    /// bres_calc                     serial, owned cells only
    /// [update + adt_calc']          owned cells, interior; ghost res zeroed
    /// exch(q), exch(adt) … phase 2 … update
    /// ```
    ///
    /// `shape` selects threaded or `L`-lane vectorized block bodies
    /// (pass [`Shape::Simd`] with `lanes == L`); `policy` selects
    /// overlapped or blocking exchanges — both compute in the same
    /// order, so their results are bit-identical. Returns the global
    /// normalized RMS via the rank-ordered (bit-reproducible) allreduce.
    ///
    /// With `guard: Some(_)` the exchange finishes route through the
    /// [`ExchangeGuard`]: a halo receive that misses the guard's deadline
    /// latches a typed timeout and the step completes on stale ghost
    /// data instead of blocking forever — the resilient driver rolls the
    /// step back at the next health vote. With `None`, a missing packet
    /// panics after the universe watchdog (the fail-fast default).
    #[allow(clippy::too_many_arguments)]
    pub fn step_fused_chain<const L: usize>(
        &mut self,
        comm: &Comm,
        cache: &PlanCache,
        pool: &ExecPool,
        shape: Shape,
        block_size: usize,
        total_cells: usize,
        policy: ExchangePolicy,
        rec: Option<&Recorder>,
        guard: Option<&ExchangeGuard>,
    ) -> f64 {
        let RankState {
            local,
            bound,
            edge_halo,
            x,
            q,
            qold,
            adt,
            res,
            consts,
        } = self;
        let mesh = &local.mesh;
        let halo = &local.cell_halo;
        let n_owned = local.n_owned_cells;
        let (x, consts, bound, edge_halo) = (&*x, &*consts, &*bound, &*edge_halo);
        // rank-local dats are always AoS (distribution extracts AoS rows);
        // the views are captured before the SharedDat borrows below
        let (xv, qv, qoldv, resv) = (x.view(), q.view(), qold.view(), res.view());
        let (ne, nb) = (mesh.n_edges(), mesh.n_bedges());
        let n_cell_blocks = n_owned.div_ceil(block_size);
        // rms partials: one slot per (phase, owned-cell block), merged in
        // block order after the chain — deterministic per rank, then
        // rank-ordered across ranks
        let mut rms_blocks = vec![R::ZERO; 2 * n_cell_blocks];
        {
            let qs = SharedDat::new(&mut q.data);
            let qolds = SharedDat::new(&mut qold.data);
            let adts = SharedDat::new(&mut adt.data);
            let ress = SharedDat::new(&mut res.data);
            let rmss = SharedDat::new(&mut rms_blocks);
            // in-flight exchange handles, passed from start to finish
            let pending_q: [Mutex<Option<PendingExchange>>; 2] =
                [Mutex::new(None), Mutex::new(None)];
            let pending_adt: [Mutex<Option<PendingExchange>>; 2] =
                [Mutex::new(None), Mutex::new(None)];
            let desc = |name: &str, n: usize| LoopDesc::new(profile(name), n);

            let mut chain = Chain::new("airfoil_step");
            {
                let (qs, qolds) = (&qs, &qolds);
                chain.record_simd(
                    desc("save_soln", n_owned),
                    vec![],
                    L,
                    move |c| unsafe {
                        save_soln(qs.slice(c * 4, 4), qolds.slice_mut(c * 4, 4));
                    },
                    move |cs| unsafe {
                        let src = qs.as_slice();
                        let dst = qolds.slice_mut(0, qolds.len());
                        for i in 0..4 {
                            VecR::<R, L>::load(src, cs * 4 + i * L).store(dst, cs * 4 + i * L);
                        }
                    },
                );
                chain.mark_interior();
            }
            for phase in 0..2 {
                {
                    let (qs, adts) = (&qs, &adts);
                    chain.record_simd(
                        desc("adt_calc", n_owned),
                        vec![],
                        L,
                        move |c| {
                            let n = mesh.cell2node.row(c);
                            let mut a = R::ZERO;
                            unsafe {
                                adt_calc(
                                    x.row(n[0] as usize),
                                    x.row(n[1] as usize),
                                    x.row(n[2] as usize),
                                    x.row(n[3] as usize),
                                    qs.slice(c * 4, 4),
                                    &mut a,
                                    consts,
                                );
                                adts.slice_mut(c, 1)[0] = a;
                            }
                        },
                        move |cs| unsafe {
                            drivers::adt_chunk::<R, L>(
                                cs,
                                &mesh.cell2node.data,
                                &x.data,
                                xv,
                                qs.as_slice(),
                                qv,
                                adts.slice_mut(0, adts.len()),
                                consts,
                            );
                        },
                    );
                    chain.mark_interior();
                }
                // ghosts of q and adt are stale (update / adt_calc ran on
                // owned cells only): post the sends; the receives finish
                // between res_calc's interior and boundary passes
                {
                    let (qs, slot) = (&qs, &pending_q[phase]);
                    chain.record_exchange(
                        "halo[q]",
                        move || {
                            let started =
                                halo.start(comm, unsafe { qs.as_slice() }, 4, phase as u64 * 2);
                            *slot.lock().unwrap() = Some(started);
                        },
                        move || {
                            let started = slot.lock().unwrap().take().expect("q exchange started");
                            match guard {
                                Some(g) => {
                                    g.finish(started, comm, unsafe { qs.slice_mut(0, qs.len()) })
                                }
                                None => started.finish(comm, unsafe { qs.slice_mut(0, qs.len()) }),
                            }
                        },
                    );
                }
                {
                    let (adts, slot) = (&adts, &pending_adt[phase]);
                    chain.record_exchange(
                        "halo[adt]",
                        move || {
                            let started = halo.start(
                                comm,
                                unsafe { adts.as_slice() },
                                1,
                                phase as u64 * 2 + 1,
                            );
                            *slot.lock().unwrap() = Some(started);
                        },
                        move || {
                            let started =
                                slot.lock().unwrap().take().expect("adt exchange started");
                            match guard {
                                Some(g) => g.finish(started, comm, unsafe {
                                    adts.slice_mut(0, adts.len())
                                }),
                                None => {
                                    started.finish(comm, unsafe { adts.slice_mut(0, adts.len()) })
                                }
                            }
                        },
                    );
                }
                {
                    let (qs, adts, ress) = (&qs, &adts, &ress);
                    chain.record_simd_two_phase(
                        desc("res_calc", ne),
                        vec![&mesh.edge2cell],
                        L,
                        move |e| {
                            let n = mesh.edge2node.row(e);
                            let c = mesh.edge2cell.row(e);
                            let (c0, c1) = (c[0] as usize, c[1] as usize);
                            let mut r1 = [R::ZERO; 4];
                            let mut r2 = [R::ZERO; 4];
                            unsafe {
                                res_calc(
                                    x.row(n[0] as usize),
                                    x.row(n[1] as usize),
                                    qs.slice(c0 * 4, 4),
                                    qs.slice(c1 * 4, 4),
                                    adts.slice(c0, 1)[0],
                                    adts.slice(c1, 1)[0],
                                    &mut r1,
                                    &mut r2,
                                    consts,
                                );
                            }
                            (c0, r1, c1, r2)
                        },
                        move |_e, inc| unsafe { ump_core::apply_edge_inc(ress, inc) },
                        move |es| unsafe {
                            drivers::res_chunk::<R, L>(
                                es,
                                &mesh.edge2node.data,
                                &mesh.edge2cell.data,
                                &x.data,
                                xv,
                                qs.as_slice(),
                                qv,
                                adts.as_slice(),
                                ress.slice_mut(0, ress.len()),
                                resv,
                                consts,
                            );
                        },
                    );
                    chain.mark_boundary(edge_halo);
                }
                {
                    let (qs, adts, ress) = (&qs, &adts, &ress);
                    chain.record_seq(desc("bres_calc", nb), move || {
                        for be in 0..nb {
                            let n = mesh.bedge2node.row(be);
                            let c0 = mesh.bedge2cell.at(be, 0);
                            unsafe {
                                bres_calc(
                                    x.row(n[0] as usize),
                                    x.row(n[1] as usize),
                                    qs.slice(c0 * 4, 4),
                                    adts.slice(c0, 1)[0],
                                    ress.slice_mut(c0 * 4, 4),
                                    bound[be],
                                    consts,
                                );
                            }
                        }
                    });
                    // bedges map to owned cells only — never to ghosts
                    chain.mark_interior();
                }
                {
                    let (qs, qolds, adts, ress, rmss) = (&qs, &qolds, &adts, &ress, &rmss);
                    if let Shape::Simd { .. } = shape {
                        chain.record_simd(
                            desc("update", n_owned),
                            vec![],
                            L,
                            move |c| unsafe {
                                let mut local = R::ZERO;
                                update(
                                    qolds.slice(c * 4, 4),
                                    qs.slice_mut(c * 4, 4),
                                    ress.slice_mut(c * 4, 4),
                                    adts.slice(c, 1)[0],
                                    &mut local,
                                );
                                let slot = phase * n_cell_blocks + c / block_size;
                                rmss.slice_mut(slot, 1)[0] += local;
                            },
                            move |cs| unsafe {
                                let mut local_v = VecR::<R, L>::zero();
                                drivers::update_chunk::<R, L>(
                                    cs,
                                    qolds.as_slice(),
                                    qoldv,
                                    qs.slice_mut(0, qs.len()),
                                    qv,
                                    ress.slice_mut(0, ress.len()),
                                    resv,
                                    adts.as_slice(),
                                    &mut local_v,
                                );
                                let slot = phase * n_cell_blocks + cs / block_size;
                                rmss.slice_mut(slot, 1)[0] += local_v.reduce_sum();
                            },
                        );
                    } else {
                        chain.record_blocks(desc("update", n_owned), vec![], move |b, range| {
                            let mut local = R::ZERO;
                            for c in range.start as usize..range.end as usize {
                                unsafe {
                                    update(
                                        qolds.slice(c * 4, 4),
                                        qs.slice_mut(c * 4, 4),
                                        ress.slice_mut(c * 4, 4),
                                        adts.slice(c, 1)[0],
                                        &mut local,
                                    );
                                }
                            }
                            unsafe { rmss.slice_mut(phase * n_cell_blocks + b, 1)[0] = local };
                        });
                    }
                    chain.mark_interior();
                }
                {
                    // discard ghost increments (owners recompute them via
                    // their redundant boundary edges)
                    let ress = &ress;
                    chain.epilogue(move || unsafe {
                        for v in ress.slice_mut(n_owned * 4, ress.len() - n_owned * 4) {
                            *v = R::ZERO;
                        }
                    });
                }
            }
            chain.execute_policy(pool, cache, shape, 0, block_size, R::BYTES, rec, policy);
        }
        let mut rms = R::ZERO;
        for v in rms_blocks {
            rms += v;
        }
        let global = comm.allreduce_sum(rms.to_f64());
        (global / total_cells as f64).sqrt()
    }
}

/// Run the distributed fused backend end to end: `n_ranks` SPMD ranks,
/// each with a persistent per-rank [`ExecPool`], stepping the rank-local
/// fused chain with halo/compute overlap (or blocking exchanges, for the
/// baseline). `shape` is the per-rank execution shape — pass
/// [`Shape::Simd`]`{ lanes: L }` for the vectorized composition. Returns
/// the assembled global flow state and the RMS history.
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_fused<R: Real, const L: usize>(
    case: &AirfoilCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    iters: usize,
    shape: Shape,
    policy: ExchangePolicy,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    run_mpi_fused_with_partition::<R, L>(
        case,
        &partition,
        threads_per_rank,
        block_size,
        iters,
        shape,
        policy,
    )
}

/// As [`run_mpi_fused`] with an explicit partition — tests use it to
/// stress ragged ownership (a rank with almost no interior, a rank with
/// a huge fringe).
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_fused_with_partition<R: Real, const L: usize>(
    case: &AirfoilCase,
    partition: &Partition,
    threads_per_rank: usize,
    block_size: usize,
    iters: usize,
    shape: Shape,
    policy: ExchangePolicy,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let locals = distribute(mesh, partition);
    let total_cells = mesh.n_cells();
    let n_ranks = partition.n_parts as usize;

    let results = Universe::new(n_ranks).run(|comm| {
        let cache = PlanCache::new();
        let pool = ExecPool::new(threads_per_rank);
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(iters);
        for _ in 0..iters {
            history.push(state.step_fused_chain::<L>(
                comm,
                &cache,
                &pool,
                shape,
                block_size,
                total_cells,
                policy,
                None,
                None,
            ));
        }
        (
            state.q.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let q = OpDat::from_vec(
        "q",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (q, history)
}

/// One rank's returned state dats: (q, qold, adt, res).
type RankDats<R> = (Vec<R>, Vec<R>, Vec<R>, Vec<R>);

/// One distributed fused step on a *global* simulation state — the
/// `step_on` entry point behind `Backend::MpiFused*`. Distributes the
/// state across `n_ranks` ranks, runs one overlapped fused-chain
/// iteration per rank, and assembles every dat back, so consecutive
/// calls continue the simulation exactly like a persistent universe
/// (ghost values are refreshed from owners each step either way).
pub fn step_mpi_fused<R: Real, const L: usize>(
    sim: &mut Airfoil<R>,
    n_ranks: usize,
    block_size: usize,
    shape: Shape,
    rec: Option<&Recorder>,
) -> f64 {
    let mesh = &sim.case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = {
        let sim = &*sim;
        Universe::new(n_ranks).run(|comm| {
            let cache = PlanCache::new();
            let pool = ExecPool::new(2);
            let mut st = rank_state_from_global(&sim.case, locals[comm.rank()].clone(), sim);
            let rms = st.step_fused_chain::<L>(
                comm,
                &cache,
                &pool,
                shape,
                block_size,
                total_cells,
                ExchangePolicy::Overlap,
                rec,
                None,
            );
            (
                (st.q.data, st.qold.data, st.adt.data, st.res.data),
                st.local.cell_global.clone(),
                st.local.n_owned_cells,
                rms,
            )
        })
    };

    let assemble = |pick: &dyn Fn(&RankDats<R>) -> &[R], dim: usize| {
        let parts: Vec<(&[R], &[u32], usize)> = results
            .iter()
            .map(|(dats, ids, n_owned, _)| (pick(dats), ids.as_slice(), *n_owned))
            .collect();
        ump_core::dist::assemble_owned(&parts, total_cells, dim)
    };
    sim.q.data = assemble(&|d| &d.0, 4);
    sim.qold.data = assemble(&|d| &d.1, 4);
    sim.adt.data = assemble(&|d| &d.2, 1);
    sim.res.data = assemble(&|d| &d.3, 4);
    results[0].3
}

/// Initialize a rank state from a *mid-simulation* global state — lets
/// tests hand the MPI backend a nontrivial flow field.
pub fn rank_state_from_global<R: Real>(
    case: &AirfoilCase,
    local: LocalMesh,
    global: &Airfoil<R>,
) -> RankState<R> {
    let mut st = RankState::<R>::new(case, local);
    st.q.data = extract_rows(&global.q.data, 4, &st.local.cell_global);
    st.qold.data = extract_rows(&global.qold.data, 4, &st.local.cell_global);
    st.adt.data = extract_rows(&global.adt.data, 1, &st.local.cell_global);
    st.res.data = extract_rows(&global.res.data, 4, &st.local.cell_global);
    st
}

impl<R: Real> RankState<R> {
    /// Serialize the rank's evolving dats (`q`, `qold`, `adt`, `res`)
    /// as exact bit patterns — the rank-level coordinated-checkpoint
    /// payload. Mesh topology, geometry, and constants are deterministic
    /// functions of the case and partition, so they are rebuilt on
    /// restart rather than stored.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity((self.q.data.len() * 3 + self.adt.data.len()) * 8 + 256);
        for dat in [&self.q, &self.qold, &self.adt, &self.res] {
            dat.save(&mut out).expect("Vec<u8> writes are infallible");
        }
        out
    }

    /// Restore the evolving dats from [`RankState::snapshot`] bytes.
    /// All-or-nothing: the state is untouched unless every dat decodes
    /// and matches this rank's shape (typed error, never a panic).
    pub fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let mut r = bytes;
        let mut loaded = Vec::with_capacity(4);
        for dat in [&self.q, &self.qold, &self.adt, &self.res] {
            let got = OpDat::<R>::load(&mut r)?;
            if got.set_size != dat.set_size || got.dim != dat.dim {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "snapshot dat {} is {}x{}, rank expects {}x{}",
                        got.name, got.set_size, got.dim, dat.set_size, dat.dim
                    ),
                ));
            }
            loaded.push(got.data);
        }
        let mut it = loaded.into_iter();
        self.q.data = it.next().unwrap();
        self.qold.data = it.next().unwrap();
        self.adt.data = it.next().unwrap();
        self.res.data = it.next().unwrap();
        Ok(())
    }
}

/// As [`run_mpi_fused`], but fault-tolerant: each rank checkpoints its
/// evolving dats every `checkpoint_every` steps (0 = initial state only)
/// and the ranks run the coordinated health-vote/rollback protocol of
/// [`resilient_loop`]. `injector` supplies deterministic faults (rank
/// kills, dropped/delayed halo packets); `io_timeout` bounds every halo
/// wait via an [`ExchangeGuard`], so an injected loss surfaces as a
/// typed timeout and a rollback rather than a hang. Under any such plan
/// the returned state and history are bit-identical to a fault-free run.
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_fused_resilient<R: Real, const L: usize>(
    case: &AirfoilCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    iters: usize,
    shape: Shape,
    policy: ExchangePolicy,
    checkpoint_every: usize,
    injector: Option<Arc<FaultInjector>>,
    io_timeout: Duration,
) -> (OpDat<R>, Vec<f64>, ResilientReport) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let mut universe = Universe::new(n_ranks);
    if let Some(inj) = injector.clone() {
        universe = universe.with_fault(inj);
    }
    let results = universe.run(|comm| {
        let cache = PlanCache::new();
        let pool = ExecPool::new(threads_per_rank);
        let guard = ExchangeGuard::new(io_timeout);
        let local = locals[comm.rank()].clone();
        let mut state = RankState::<R>::new(case, local.clone());
        let (history, report) = resilient_loop(
            comm,
            &guard,
            injector.as_ref(),
            iters,
            checkpoint_every,
            &mut state,
            || RankState::<R>::new(case, local.clone()),
            |st| st.snapshot(),
            |st, bytes| st.restore(bytes).expect("rank checkpoint restore"),
            |st, g| {
                st.step_fused_chain::<L>(
                    comm,
                    &cache,
                    &pool,
                    shape,
                    block_size,
                    total_cells,
                    policy,
                    None,
                    Some(g),
                )
            },
        );
        (
            state.q.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
            report,
        )
    });

    let history = results[0].3.clone();
    let mut report = ResilientReport::default();
    for (_, _, _, _, r) in &results {
        report.merge(r);
    }
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let q = OpDat::from_vec(
        "q",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (q, history, report)
}

/// Convenience: SIMD lanes used by the hybrid rank drivers; re-exported
/// so binaries can name the width symbolically.
pub type LaneVec<R, const L: usize> = VecR<R, L>;
