//! The Airfoil user kernels, vector form — `res_calc_vec` and friends
//! from paper Fig. 3b: identical arithmetic to the scalar kernels, but
//! over `VecR<R, L>` lanes, so the same source instantiates at AVX
//! (L = 4 doubles / 8 floats) and IMCI/AVX-512 (8 / 16) widths.
//!
//! Control flow is expressed with masks and `select` (paper §4.2's
//! requirement); `bres_calc` demonstrates it even though production
//! drivers run the tiny boundary set scalar.

use ump_simd::{Mask, Real, VecR};

use super::Consts;

/// Vector `adt_calc`: local timestep over `L` cells at once.
/// `x*` are the gathered node coordinates (component-of-lane layout:
/// `x1[0]` holds the x-coordinates of node 1 of all `L` cells).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn adt_calc_vec<R: Real, const L: usize>(
    x1: &[VecR<R, L>; 2],
    x2: &[VecR<R, L>; 2],
    x3: &[VecR<R, L>; 2],
    x4: &[VecR<R, L>; 2],
    q: &[VecR<R, L>; 4],
    c: &Consts<R>,
) -> VecR<R, L> {
    let ri = q[0].recip();
    let u = ri * q[1];
    let v = ri * q[2];
    let cs = ((ri * q[3] - (u * u + v * v) * R::HALF) * (c.gam * c.gm1)).sqrt();

    let mut acc = VecR::<R, L>::zero();
    let mut side = |xa: &[VecR<R, L>; 2], xb: &[VecR<R, L>; 2]| {
        let dx = xa[0] - xb[0];
        let dy = xa[1] - xb[1];
        acc += (u * dy - v * dx).abs() + cs * (dx * dx + dy * dy).sqrt();
    };
    side(x2, x1);
    side(x3, x2);
    side(x4, x3);
    side(x1, x4);
    acc * (R::ONE / c.cfl)
}

/// Vector `res_calc`: fluxes for `L` edges at once; increments are
/// returned in `res1`/`res2` accumulators for the driver to scatter
/// (serialized or vector-scattered depending on the coloring scheme).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn res_calc_vec<R: Real, const L: usize>(
    x1: &[VecR<R, L>; 2],
    x2: &[VecR<R, L>; 2],
    q1: &[VecR<R, L>; 4],
    q2: &[VecR<R, L>; 4],
    adt1: VecR<R, L>,
    adt2: VecR<R, L>,
    res1: &mut [VecR<R, L>; 4],
    res2: &mut [VecR<R, L>; 4],
    c: &Consts<R>,
) {
    let dx = x1[0] - x2[0];
    let dy = x1[1] - x2[1];

    let half = VecR::<R, L>::splat(R::HALF);
    let gm1 = VecR::<R, L>::splat(c.gm1);

    let mut ri = q1[0].recip();
    let p1 = gm1 * (q1[3] - half * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
    let vol1 = ri * (q1[1] * dy - q1[2] * dx);

    ri = q2[0].recip();
    let p2 = gm1 * (q2[3] - half * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
    let vol2 = ri * (q2[1] * dy - q2[2] * dx);

    let mu = half * (adt1 + adt2) * c.eps;

    let mut f;
    f = half * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
    res1[0] += f;
    res2[0] -= f;
    f = half * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (q1[1] - q2[1]);
    res1[1] += f;
    res2[1] -= f;
    f = half * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (q1[2] - q2[2]);
    res1[2] += f;
    res2[2] -= f;
    f = half * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3]);
    res1[3] += f;
    res2[3] -= f;
}

/// Vector `bres_calc`: branchless boundary flux using a wall mask and
/// `select` — the paper's prescribed treatment of kernel conditionals.
/// `wall` lanes apply pressure only; others the far-field flux.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub fn bres_calc_vec<R: Real, const L: usize>(
    x1: &[VecR<R, L>; 2],
    x2: &[VecR<R, L>; 2],
    q1: &[VecR<R, L>; 4],
    adt1: VecR<R, L>,
    res1: &mut [VecR<R, L>; 4],
    wall: Mask<L>,
    c: &Consts<R>,
) {
    let dx = x1[0] - x2[0];
    let dy = x1[1] - x2[1];

    let half = VecR::<R, L>::splat(R::HALF);
    let gm1 = VecR::<R, L>::splat(c.gm1);
    let zero = VecR::<R, L>::zero();

    let ri = q1[0].recip();
    let p1 = gm1 * (q1[3] - half * ri * (q1[1] * q1[1] + q1[2] * q1[2]));

    // wall branch contributions
    let wall1 = p1 * dy;
    let wall2 = -(p1 * dx);

    // far-field branch contributions
    let vol1 = ri * (q1[1] * dy - q1[2] * dx);
    let qinf: [VecR<R, L>; 4] = [
        VecR::splat(c.qinf[0]),
        VecR::splat(c.qinf[1]),
        VecR::splat(c.qinf[2]),
        VecR::splat(c.qinf[3]),
    ];
    let ri2 = qinf[0].recip();
    let p2 = gm1 * (qinf[3] - half * ri2 * (qinf[1] * qinf[1] + qinf[2] * qinf[2]));
    let vol2 = ri2 * (qinf[1] * dy - qinf[2] * dx);
    let mu = adt1 * c.eps;

    let ff0 = half * (vol1 * q1[0] + vol2 * qinf[0]) + mu * (q1[0] - qinf[0]);
    let ff1 = half * (vol1 * q1[1] + p1 * dy + vol2 * qinf[1] + p2 * dy) + mu * (q1[1] - qinf[1]);
    let ff2 = half * (vol1 * q1[2] - p1 * dx + vol2 * qinf[2] - p2 * dx) + mu * (q1[2] - qinf[2]);
    let ff3 = half * (vol1 * (q1[3] + p1) + vol2 * (qinf[3] + p2)) + mu * (q1[3] - qinf[3]);

    res1[0] += VecR::select(wall, zero, ff0);
    res1[1] += VecR::select(wall, wall1, ff1);
    res1[2] += VecR::select(wall, wall2, ff2);
    res1[3] += VecR::select(wall, zero, ff3);
}

/// Vector `update`: advance `L` cells, returning the lane-summed squared
/// residual for the caller's reduction accumulator.
#[inline(always)]
pub fn update_vec<R: Real, const L: usize>(
    qold: &[VecR<R, L>; 4],
    q: &mut [VecR<R, L>; 4],
    res: &mut [VecR<R, L>; 4],
    adt: VecR<R, L>,
    rms_acc: &mut VecR<R, L>,
) {
    let adti = adt.recip();
    for n in 0..4 {
        let del = adti * res[n];
        q[n] = qold[n] - del;
        res[n] = VecR::zero();
        *rms_acc += del * del;
    }
}

#[cfg(test)]
mod tests {
    use super::super::kernels;
    use super::*;
    use ump_mesh::generators::BOUND_WALL;
    use ump_mesh::SplitMix64;

    /// Drive the vector kernel with 4 random lanes and compare each lane
    /// against the scalar kernel — the fundamental Fig. 3b equivalence.
    #[test]
    fn res_calc_vec_matches_scalar_lanewise() {
        let c = Consts::<f64>::default();
        let mut rng = SplitMix64::new(42);
        let mut r = move || 0.5 + rng.next_f64();
        for _ in 0..10 {
            let x1s: Vec<[f64; 2]> = (0..4).map(|_| [r(), r()]).collect();
            let x2s: Vec<[f64; 2]> = (0..4).map(|_| [r(), r()]).collect();
            let q1s: Vec<[f64; 4]> = (0..4).map(|_| [r() + 1.0, r(), r(), r() + 3.0]).collect();
            let q2s: Vec<[f64; 4]> = (0..4).map(|_| [r() + 1.0, r(), r(), r() + 3.0]).collect();
            let a1: Vec<f64> = (0..4).map(|_| r()).collect();
            let a2: Vec<f64> = (0..4).map(|_| r()).collect();

            // scalar reference per lane
            let mut ref1 = [[0.0f64; 4]; 4];
            let mut ref2 = [[0.0f64; 4]; 4];
            for l in 0..4 {
                kernels::res_calc(
                    &x1s[l],
                    &x2s[l],
                    &q1s[l],
                    &q2s[l],
                    a1[l],
                    a2[l],
                    &mut ref1[l],
                    &mut ref2[l],
                    &c,
                );
            }

            // vector call
            let pack2 = |s: &Vec<[f64; 2]>| {
                [
                    VecR::<f64, 4>::from_fn(|l| s[l][0]),
                    VecR::<f64, 4>::from_fn(|l| s[l][1]),
                ]
            };
            let pack4 = |s: &Vec<[f64; 4]>| {
                std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::from_fn(|l| s[l][d]))
            };
            let mut v1 = [VecR::<f64, 4>::zero(); 4];
            let mut v2 = [VecR::<f64, 4>::zero(); 4];
            res_calc_vec(
                &pack2(&x1s),
                &pack2(&x2s),
                &pack4(&q1s),
                &pack4(&q2s),
                VecR::from_fn(|l| a1[l]),
                VecR::from_fn(|l| a2[l]),
                &mut v1,
                &mut v2,
                &c,
            );
            for l in 0..4 {
                for d in 0..4 {
                    assert!(
                        (v1[d].lane(l) - ref1[l][d]).abs() < 1e-13,
                        "res1 lane {l} dim {d}"
                    );
                    assert!(
                        (v2[d].lane(l) - ref2[l][d]).abs() < 1e-13,
                        "res2 lane {l} dim {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn adt_calc_vec_matches_scalar_lanewise() {
        let c = Consts::<f64>::default();
        let mut rng = SplitMix64::new(7);
        let mut r = move || 0.25 + rng.next_f64();
        let xs: Vec<[[f64; 2]; 4]> = (0..4)
            .map(|_| {
                [
                    [r(), r()],
                    [r() + 1.0, r()],
                    [r() + 1.0, r() + 1.0],
                    [r(), r() + 1.0],
                ]
            })
            .collect();
        let qs: Vec<[f64; 4]> = (0..4).map(|_| [1.0 + r(), r(), r(), 3.0 + r()]).collect();

        let mut reference = [0.0f64; 4];
        for l in 0..4 {
            kernels::adt_calc(
                &xs[l][0],
                &xs[l][1],
                &xs[l][2],
                &xs[l][3],
                &qs[l],
                &mut reference[l],
                &c,
            );
        }
        let pack_node = |i: usize| {
            [
                VecR::<f64, 4>::from_fn(|l| xs[l][i][0]),
                VecR::<f64, 4>::from_fn(|l| xs[l][i][1]),
            ]
        };
        let q = std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::from_fn(|l| qs[l][d]));
        let adt = adt_calc_vec(
            &pack_node(0),
            &pack_node(1),
            &pack_node(2),
            &pack_node(3),
            &q,
            &c,
        );
        for l in 0..4 {
            assert!((adt.lane(l) - reference[l]).abs() < 1e-13, "lane {l}");
        }
    }

    #[test]
    fn update_vec_matches_scalar_lanewise() {
        let qold = std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::splat(d as f64 + 1.0));
        let mut qv = [VecR::<f64, 4>::zero(); 4];
        let mut resv = std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::splat(0.1 * d as f64));
        let mut rms_acc = VecR::<f64, 4>::zero();
        update_vec(&qold, &mut qv, &mut resv, VecR::splat(2.0), &mut rms_acc);

        let qold_s = [1.0, 2.0, 3.0, 4.0];
        let mut q_s = [0.0; 4];
        let mut res_s = [0.0, 0.1, 0.2, 0.3];
        let mut rms_s = 0.0;
        kernels::update(&qold_s, &mut q_s, &mut res_s, 2.0, &mut rms_s);

        for d in 0..4 {
            assert!((qv[d].lane(0) - q_s[d]).abs() < 1e-15);
            assert_eq!(resv[d].lane(0), 0.0);
        }
        assert!((rms_acc.reduce_sum() / 4.0 - rms_s).abs() < 1e-15);
    }

    #[test]
    fn bres_vec_select_matches_scalar_branches() {
        let c = Consts::<f64>::default();
        let x1 = [
            VecR::<f64, 4>::splat(0.0),
            VecR::from_fn(|l| l as f64 + 1.0),
        ];
        let x2 = [VecR::<f64, 4>::splat(0.0), VecR::from_fn(|l| l as f64)];
        let q1 = std::array::from_fn::<_, 4, _>(|d| VecR::<f64, 4>::splat(c.qinf[d] * 1.05));
        let adt = VecR::<f64, 4>::splat(1.2);
        // lanes 0,2 wall; lanes 1,3 farfield
        let wall = Mask::from_array([true, false, true, false]);
        let mut resv = [VecR::<f64, 4>::zero(); 4];
        bres_calc_vec(&x1, &x2, &q1, adt, &mut resv, wall, &c);

        for l in 0..4 {
            let x1s = [x1[0].lane(l), x1[1].lane(l)];
            let x2s = [x2[0].lane(l), x2[1].lane(l)];
            let q1s = std::array::from_fn::<_, 4, _>(|d| q1[d].lane(l));
            let mut ref_res = [0.0f64; 4];
            let bound = if wall.lane(l) { BOUND_WALL } else { 1 };
            kernels::bres_calc(&x1s, &x2s, &q1s, 1.2, &mut ref_res, bound, &c);
            for d in 0..4 {
                assert!(
                    (resv[d].lane(l) - ref_res[d]).abs() < 1e-13,
                    "lane {l} dim {d}"
                );
            }
        }
    }
}
