//! The Airfoil benchmark: data layout, constants, loop profiles, and the
//! simulation harness.
//!
//! Iteration structure (as in OP2's `airfoil.cpp`):
//!
//! ```text
//! for iter {
//!     save_soln:  qold ← q                      (cells, direct copy)
//!     2 × {  adt_calc:  local timestep          (cells, gather x)
//!            res_calc:  interior fluxes          (edges, gather, colored scatter)
//!            bres_calc: boundary fluxes          (bedges, tiny)
//!            update:    q ← qold − Δt·res, rms   (cells, direct, reduction) }
//! }
//! ```

pub mod drivers;
pub mod kernels;
pub mod kernels_vec;
pub mod mpi;

use ump_core::{Access, ArgInfo, Layout, LoopProfile, OpDat};
use ump_mesh::generators::{quad_channel, AirfoilCase};
use ump_simd::Real;

/// Physical and numerical constants of the benchmark (OP2 `airfoil.cpp`
/// values).
#[derive(Clone, Copy, Debug)]
pub struct Consts<R: Real> {
    /// Ratio of specific heats γ = 1.4.
    pub gam: R,
    /// γ − 1.
    pub gm1: R,
    /// CFL number 0.9.
    pub cfl: R,
    /// Artificial-viscosity coefficient 0.05.
    pub eps: R,
    /// Freestream state (ρ, ρu, ρv, ρE) at Mach 0.4.
    pub qinf: [R; 4],
}

impl<R: Real> Default for Consts<R> {
    fn default() -> Self {
        let gam = 1.4f64;
        let gm1 = gam - 1.0;
        let mach = 0.4;
        let (p, r) = (1.0f64, 1.0f64);
        let u = (gam * p / r).sqrt() * mach;
        let e = p / (r * gm1) + 0.5 * u * u;
        Consts {
            gam: R::from_f64(gam),
            gm1: R::from_f64(gm1),
            cfl: R::from_f64(0.9),
            eps: R::from_f64(0.05),
            qinf: [
                R::from_f64(r),
                R::from_f64(r * u),
                R::ZERO,
                R::from_f64(r * e),
            ],
        }
    }
}

/// The full simulation state at precision `R`.
#[derive(Clone, Debug)]
pub struct Airfoil<R: Real> {
    /// Mesh and boundary tags.
    pub case: AirfoilCase,
    /// Constants.
    pub consts: Consts<R>,
    /// Node coordinates (nodes × 2).
    pub x: OpDat<R>,
    /// Flow variables (cells × 4).
    pub q: OpDat<R>,
    /// Saved flow variables (cells × 4).
    pub qold: OpDat<R>,
    /// Local timestep (cells × 1).
    pub adt: OpDat<R>,
    /// Residuals (cells × 4).
    pub res: OpDat<R>,
}

impl<R: Real> Airfoil<R> {
    /// Set up the benchmark on an `nx × ny` channel mesh (the paper's
    /// meshes are 1200×600 and 2400×1200) with freestream initial data.
    pub fn new(nx: usize, ny: usize) -> Airfoil<R> {
        Self::from_case(quad_channel(nx, ny))
    }

    /// Like [`new`](Airfoil::new), with the freestream deterministically
    /// perturbed from `seed` — the per-job initial conditions of the
    /// service layer, where thousands of concurrent simulations must
    /// each be reproducible from their spec alone. Seed 0 is the
    /// pristine case. Density and energy are scaled together by
    /// ±5·10⁻⁵ per cell (SplitMix64 stream), small enough to keep the
    /// solver in its stable regime at any mesh size.
    pub fn seeded(nx: usize, ny: usize, seed: u64) -> Airfoil<R> {
        let mut sim = Self::new(nx, ny);
        if seed != 0 {
            let mut rng = ump_mesh::SplitMix64::new(seed);
            for c in 0..sim.q.set_size {
                let f = R::from_f64(1.0 + 1.0e-4 * (rng.next_f64() - 0.5));
                let row = sim.q.row_mut(c);
                row[0] *= f;
                row[3] *= f;
            }
        }
        sim
    }

    /// Set up on a prebuilt case. Runs the lane-locality edge pass
    /// (§4's gather/scatter cost): consecutive edges then tend to share
    /// cells, so the fused-SIMD chunk gathers hit cache lines that lanes
    /// of the previous chunk already pulled in. The pass reverts itself
    /// when it would not improve the shared-cell fraction, so this never
    /// hurts the scalar backends (which are order-insensitive).
    pub fn from_case(mut case: AirfoilCase) -> Airfoil<R> {
        ump_mesh::renumber::lane_localize_edges(&mut case.mesh);
        let consts = Consts::<R>::default();
        let n_nodes = case.mesh.n_nodes();
        let n_cells = case.mesh.n_cells();
        let x = OpDat::from_fn("x", n_nodes, 2, |n| {
            let [px, py] = case.mesh.node_xy[n];
            vec![R::from_f64(px), R::from_f64(py)]
        });
        let q = OpDat::from_fn("q", n_cells, 4, |_| consts.qinf.to_vec());
        let qold = OpDat::zeros("qold", n_cells, 4);
        let adt = OpDat::zeros("adt", n_cells, 1);
        let res = OpDat::zeros("res", n_cells, 4);
        Airfoil {
            case,
            consts,
            x,
            q,
            qold,
            adt,
            res,
        }
    }

    /// Storage layout of the simulation dats (uniform across them —
    /// [`set_layout`](Airfoil::set_layout) converts all five together).
    pub fn layout(&self) -> Layout {
        self.q.layout
    }

    /// Convert every dat to `to`. A pure index permutation (bit-exact);
    /// the fused backends execute natively in any layout, the remaining
    /// backends convert back to AoS around each step.
    pub fn set_layout(&mut self, to: Layout) {
        self.x.set_layout(to);
        self.q.set_layout(to);
        self.qold.set_layout(to);
        self.adt.set_layout(to);
        self.res.set_layout(to);
    }

    /// Total dat memory footprint in bytes (Table IV).
    pub fn dat_bytes(&self) -> usize {
        self.x.bytes() + self.q.bytes() + self.qold.bytes() + self.adt.bytes() + self.res.bytes()
    }

    /// RMS normalization: √(Σ del² / cells) as `airfoil.cpp` prints.
    pub fn normalize_rms(&self, rms_sum: f64) -> f64 {
        (rms_sum / self.case.mesh.n_cells() as f64).sqrt()
    }
}

/// Static profiles of the five kernels: the `op_par_loop` signatures from
/// which Table II is derived. `word_bytes` is `R::BYTES` of the chosen
/// precision.
pub fn profiles() -> Vec<LoopProfile> {
    vec![
        LoopProfile {
            name: "save_soln".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("qold", 4, Access::Write),
            ],
            flops_per_elem: 4.0,
            transcendentals_per_elem: 0.0,
            description: "Direct copy".into(),
        },
        LoopProfile {
            name: "adt_calc".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 0),
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 1),
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 2),
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 3),
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("adt", 1, Access::Write),
            ],
            flops_per_elem: 64.0,
            transcendentals_per_elem: 5.0,
            description: "Gather, direct write".into(),
        },
        LoopProfile {
            name: "res_calc".into(),
            set: "edges".into(),
            args: vec![
                ArgInfo::indirect("x", 2, Access::Read, "edge2node", 0),
                ArgInfo::indirect("x", 2, Access::Read, "edge2node", 1),
                ArgInfo::indirect("q", 4, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("q", 4, Access::Read, "edge2cell", 1),
                ArgInfo::indirect("adt", 1, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("adt", 1, Access::Read, "edge2cell", 1),
                ArgInfo::indirect("res", 4, Access::Inc, "edge2cell", 0),
                ArgInfo::indirect("res", 4, Access::Inc, "edge2cell", 1),
            ],
            flops_per_elem: 73.0,
            transcendentals_per_elem: 0.0,
            description: "Gather, colored scatter".into(),
        },
        LoopProfile {
            name: "bres_calc".into(),
            set: "bedges".into(),
            args: vec![
                ArgInfo::indirect("x", 2, Access::Read, "bedge2node", 0),
                ArgInfo::indirect("x", 2, Access::Read, "bedge2node", 1),
                ArgInfo::indirect("q", 4, Access::Read, "bedge2cell", 0),
                ArgInfo::indirect("adt", 1, Access::Read, "bedge2cell", 0),
                ArgInfo::indirect("res", 4, Access::Inc, "bedge2cell", 0),
                ArgInfo::direct("bound", 1, Access::Read),
            ],
            flops_per_elem: 73.0,
            transcendentals_per_elem: 0.0,
            description: "Boundary".into(),
        },
        LoopProfile {
            name: "update".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("qold", 4, Access::Read),
                ArgInfo::direct("q", 4, Access::Write),
                ArgInfo::direct("res", 4, Access::Rw),
                ArgInfo::direct("adt", 1, Access::Read),
                ArgInfo::global("rms", 1, Access::Inc),
            ],
            flops_per_elem: 17.0,
            transcendentals_per_elem: 0.0,
            description: "Direct, reduction".into(),
        },
    ]
}

/// Look up one profile by kernel name. Served from a process-wide cache:
/// instrumented and fused drivers resolve profiles every loop of every
/// step, which must not rebuild the whole signature vocabulary.
pub fn profile(name: &str) -> LoopProfile {
    static CACHE: std::sync::OnceLock<Vec<LoopProfile>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(profiles)
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown airfoil kernel {name}"))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freestream_constants() {
        let c = Consts::<f64>::default();
        assert!((c.gam - 1.4).abs() < 1e-15);
        assert!((c.gm1 - 0.4).abs() < 1e-15);
        // Mach 0.4: u = sqrt(1.4)*0.4
        assert!((c.qinf[1] - 1.4f64.sqrt() * 0.4).abs() < 1e-15);
        assert_eq!(c.qinf[2], 0.0);
        assert!(c.qinf[3] > 2.5); // e = 1/0.4 + u²/2 ≈ 2.612
    }

    #[test]
    fn setup_shapes() {
        let a: Airfoil<f64> = Airfoil::new(12, 6);
        assert_eq!(a.q.set_size, 72);
        assert_eq!(a.q.dim, 4);
        assert_eq!(a.x.set_size, 13 * 7);
        assert!(a.dat_bytes() > 0);
        // initial state is uniform freestream
        assert_eq!(a.q.row(0), a.q.row(71));
    }

    #[test]
    fn table_ii_derived_from_profiles() {
        // the Table II rows, derived not hard-coded
        let expect = [
            ("save_soln", (4, 4, 0, 0), 4.0),
            ("adt_calc", (4, 1, 8, 0), 64.0),
            ("res_calc", (0, 0, 22, 8), 73.0),
            ("bres_calc", (1, 0, 13, 4), 73.0),
            ("update", (9, 8, 0, 0), 17.0),
        ];
        for (name, words, flops) in expect {
            let p = profile(name);
            let t = p.transfers();
            assert_eq!(
                (
                    t.direct_read,
                    t.direct_write,
                    t.indirect_read,
                    t.indirect_write
                ),
                words,
                "{name}"
            );
            assert_eq!(p.flops_per_elem, flops, "{name}");
        }
    }

    #[test]
    fn seeded_is_deterministic_and_bounded() {
        let a: Airfoil<f64> = Airfoil::seeded(12, 6, 7);
        let b: Airfoil<f64> = Airfoil::seeded(12, 6, 7);
        let c: Airfoil<f64> = Airfoil::seeded(12, 6, 8);
        let p: Airfoil<f64> = Airfoil::new(12, 6);
        assert_eq!(a.q.data, b.q.data, "same seed, same state");
        assert_ne!(a.q.data, c.q.data, "different seeds diverge");
        assert_eq!(
            Airfoil::<f64>::seeded(12, 6, 0).q.data,
            p.q.data,
            "seed 0 is pristine"
        );
        // perturbation stays tiny and leaves momenta untouched
        for cell in 0..a.q.set_size {
            let (r, r0) = (a.q.row(cell), p.q.row(cell));
            assert!((r[0] / r0[0] - 1.0).abs() <= 5.1e-5);
            assert_eq!(r[1], r0[1]);
            assert_eq!(r[2], r0[2]);
        }
    }

    #[test]
    fn sp_footprint_is_half_dp() {
        let dp: Airfoil<f64> = Airfoil::new(8, 4);
        let sp: Airfoil<f32> = Airfoil::new(8, 4);
        assert_eq!(sp.dat_bytes() * 2, dp.dat_bytes());
    }
}
