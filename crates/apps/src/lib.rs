//! # ump-apps — the paper's two benchmark applications
//!
//! * [`airfoil`] — the Airfoil benchmark (paper §6.1, Table II): a
//!   non-linear 2-D inviscid finite-volume Euler solver with the five OP2
//!   kernels `save_soln`, `adt_calc`, `res_calc`, `bres_calc`, `update`.
//!   Generic over precision (`f32`/`f64`), as the paper runs both.
//! * [`volna`] — the Volna shallow-water tsunami code (paper §6.1,
//!   Table III): single precision, six kernels `sim_1`, `compute_flux`,
//!   `numerical_flux`, `space_disc`, `RK_1`, `RK_2`.
//!
//! Each application provides *kernels* (the "user code" of the OP2
//! abstraction — a scalar form generic over `R: Real` and a vector form
//! generic over `VecR<R, LANES>`, mirroring `res_calc` / `res_calc_vec`
//! in paper Fig. 3b) and *drivers* — the per-backend loop bodies OP2's
//! code generator would emit (Figs 2b/3a/3b): sequential, threaded
//! colored blocks, explicit SIMD with gather/scatter and the three-sweep
//! structure, SIMT emulation, and the message-passing backend with halo
//! exchanges and redundant exec-halo execution.

#![deny(missing_docs)]

pub mod airfoil;
pub mod resilience;
pub mod volna;

pub use resilience::{resilient_loop, ResilientReport};
