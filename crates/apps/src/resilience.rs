//! Coordinated checkpoint/rollback for the distributed fused backends.
//!
//! The SPMD ranks of `run_mpi_fused` run in lockstep, so resilience is a
//! *collective* protocol layered over the per-step loop:
//!
//! ```text
//! per step:  health vote (allgather)          — any rank unhealthy?
//!            yes → drain stale messages, restore the coordinated
//!                  checkpoint on EVERY rank, truncate history, replay
//!            no  → coordinated checkpoint at the cadence boundary,
//!                  then one fused-chain step (halo timeouts latch into
//!                  the rank's ExchangeGuard instead of blocking forever)
//! ```
//!
//! A *killed* rank loses its in-memory state entirely and rebuilds from
//! its mesh piece before restoring the checkpoint bytes — the bytes stand
//! in for stable storage that survives the death. A rank whose halo
//! exchange *timed out* finishes the step on stale ghost data (garbage,
//! but no hang: every collective still completes) and reports unhealthy
//! at the next vote, dragging every rank back to the checkpoint with it.
//!
//! Because every backend is deterministic for a fixed team size and
//! injected faults are one-shot, the replay after recovery is the run
//! that would have happened without the fault — the final state and the
//! reduction history are **bit-identical** to a fault-free run, which is
//! exactly what `tests/resilience.rs` sweeps.

use std::sync::Arc;

use ump_fault::FaultInjector;
use ump_minimpi::{Comm, ExchangeGuard};

/// What a resilient distributed run had to do to finish.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilientReport {
    /// Coordinated rollbacks (all ranks agree on this count).
    pub recoveries: usize,
    /// Halo-exchange timeouts latched by any rank's guard (summed over
    /// ranks by the drivers).
    pub exchange_timeouts: u32,
    /// Steps re-executed after rollbacks (per rank; identical on all).
    pub replayed_steps: usize,
}

impl ResilientReport {
    /// Fold another rank's report in (recoveries/replays are collective
    /// and identical, timeouts are per-rank and add up).
    pub fn merge(&mut self, other: &ResilientReport) {
        self.recoveries = self.recoveries.max(other.recoveries);
        self.exchange_timeouts += other.exchange_timeouts;
        self.replayed_steps = self.replayed_steps.max(other.replayed_steps);
    }
}

/// Drive `iters` steps of a rank-local simulation with coordinated
/// checkpoint/rollback. Generic over the rank state `S` so Airfoil and
/// Volna share one protocol:
///
/// * `reinit` — rebuild `S` from scratch (a killed rank's restart path),
/// * `snapshot`/`restore` — the rank's evolving dats as bytes
///   (bit-exact, [`ump_core::OpDat::save`] format),
/// * `step` — one fused-chain step routing exchange finishes through the
///   provided [`ExchangeGuard`]; returns the step's global reduction.
///
/// Returns the reduction history and the rank's [`ResilientReport`].
#[allow(clippy::too_many_arguments)]
pub fn resilient_loop<S>(
    comm: &Comm,
    guard: &ExchangeGuard,
    injector: Option<&Arc<FaultInjector>>,
    iters: usize,
    checkpoint_every: usize,
    state: &mut S,
    reinit: impl Fn() -> S,
    snapshot: impl Fn(&S) -> Vec<u8>,
    restore: impl Fn(&mut S, &[u8]),
    mut step: impl FnMut(&mut S, &ExchangeGuard) -> f64,
) -> (Vec<f64>, ResilientReport) {
    let mut history: Vec<f64> = Vec::with_capacity(iters);
    let mut ckpt_step = 0usize;
    let mut ckpt_bytes = snapshot(state);
    let mut ckpt_history: Vec<f64> = Vec::new();
    let mut report = ResilientReport::default();
    let mut step_idx = 0usize;

    while step_idx < iters {
        let killed = injector.is_some_and(|inj| inj.on_rank_step(comm.rank(), step_idx as u64));
        let unhealthy = killed || guard.failed();
        // collective health vote: every rank sees every vote, so the
        // recovery decision below is taken (or skipped) by all ranks
        // together — the protocol can never leave ranks at different
        // steps
        let votes = comm.allgather(u8::from(unhealthy));
        if votes.iter().any(|&v| v != 0) {
            // stale halo packets from the failed step (including ones a
            // timed-out guard left queued) must not leak into the replay
            let _ = comm.drain_messages();
            report.exchange_timeouts += guard.timeouts();
            guard.reset();
            if killed {
                // process death: the in-memory state is gone; only the
                // checkpoint bytes (stable storage) survive
                *state = reinit();
            }
            restore(state, &ckpt_bytes);
            history.clear();
            history.extend_from_slice(&ckpt_history);
            report.replayed_steps += step_idx - ckpt_step;
            report.recoveries += 1;
            step_idx = ckpt_step;
            // note: the per-edge message-ordinal clock is NOT reset here —
            // ranks leave recovery at different wall times, so a shared
            // reset would race with early ranks' resumed sends; monotonic
            // ordinals stay schedule-deterministic because the lockstep
            // protocol makes the whole send sequence a pure function of
            // the fault plan
            continue;
        }
        // all ranks healthy and at the same step: a cadence boundary is
        // a *coordinated* checkpoint (never taken on a faulted step —
        // the vote above already cleared it)
        if checkpoint_every > 0
            && step_idx > 0
            && step_idx.is_multiple_of(checkpoint_every)
            && step_idx != ckpt_step
        {
            ckpt_step = step_idx;
            ckpt_bytes = snapshot(state);
            ckpt_history.clone_from(&history);
        }
        let rms = step(state, guard);
        history.push(rms);
        step_idx += 1;
    }
    (history, report)
}
