//! Block (mini-partition) decomposition and block-level coloring.
//!
//! OP2 splits each iteration set into contiguous blocks; blocks of one
//! color can be executed concurrently by OpenMP threads / CUDA blocks /
//! OpenCL work-groups without synchronization (paper §3). Block size
//! trades load balance against cache locality — the sweep reproduced in
//! Fig. 8b.

use std::ops::Range;

use ump_mesh::MapTable;

use crate::coloring::Coloring;

/// Split `[0, n)` into contiguous blocks of `block_size` (the last block
/// may be short).
pub fn make_blocks(n: usize, block_size: usize) -> Vec<Range<u32>> {
    assert!(block_size > 0, "block size must be positive");
    let mut blocks = Vec::with_capacity(n.div_ceil(block_size));
    let mut start = 0usize;
    while start < n {
        let end = (start + block_size).min(n);
        blocks.push(start as u32..end as u32);
        start = end;
    }
    blocks
}

/// Greedy first-fit coloring of blocks: two blocks conflict when any of
/// their elements write to a common target through any written map.
pub fn color_blocks(blocks: &[Range<u32>], written_maps: &[&MapTable]) -> Coloring {
    let n_blocks = blocks.len();
    if written_maps.is_empty() || n_blocks == 0 {
        return Coloring {
            colors: vec![0; n_blocks],
            n_colors: u32::from(n_blocks > 0),
        };
    }
    let n_elems = written_maps[0].from_size;
    // element -> block lookup
    let mut block_of = vec![0u32; n_elems];
    for (b, r) in blocks.iter().enumerate() {
        for e in r.clone() {
            block_of[e as usize] = b as u32;
        }
    }
    // target -> "last block seen" dedup stamp, plus per-target block lists
    // are not materialized: we color blocks in order, tracking for every
    // target the color mask of blocks already colored that touch it.
    let mut colors = vec![u32::MAX; n_blocks];
    let mut n_colors = 0u32;
    // per (map, target): bitmask of colors already adjacent
    let mut target_masks: Vec<Vec<u64>> =
        written_maps.iter().map(|m| vec![0u64; m.to_size]).collect();
    for (b, r) in blocks.iter().enumerate() {
        let mut forbidden = 0u64;
        for (m, masks) in written_maps.iter().zip(&target_masks) {
            for e in r.clone() {
                for &t in m.row(e as usize) {
                    forbidden |= masks[t as usize];
                }
            }
        }
        let c = forbidden.trailing_ones();
        assert!(
            c < 64,
            "block coloring exceeded 64 colors — block size too small"
        );
        colors[b] = c;
        n_colors = n_colors.max(c + 1);
        for (m, masks) in written_maps.iter().zip(&mut target_masks) {
            for e in r.clone() {
                for &t in m.row(e as usize) {
                    masks[t as usize] |= 1 << c;
                }
            }
        }
    }
    Coloring { colors, n_colors }
}

/// Check block-coloring soundness: no two blocks of equal color share a
/// written target.
pub fn validate_block_coloring(
    blocks: &[Range<u32>],
    written_maps: &[&MapTable],
    coloring: &Coloring,
) -> Result<(), (usize, usize)> {
    let Some(first) = written_maps.first() else {
        return Ok(()); // direct loop: no conflicts by construction
    };
    let n_elems = first.from_size;
    let mut block_of = vec![0u32; n_elems];
    for (b, r) in blocks.iter().enumerate() {
        for e in r.clone() {
            block_of[e as usize] = b as u32;
        }
    }
    for m in written_maps {
        let inv = m.invert();
        for t in 0..inv.rows() {
            let elems = inv.row(t);
            for (i, &a) in elems.iter().enumerate() {
                for &b in &elems[i + 1..] {
                    let (ba, bb) = (block_of[a as usize], block_of[b as usize]);
                    if ba != bb && coloring.colors[ba as usize] == coloring.colors[bb as usize] {
                        return Err((ba as usize, bb as usize));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::generators::{perturbed_quads, quad_channel};

    #[test]
    fn blocks_tile_the_range() {
        let blocks = make_blocks(103, 16);
        assert_eq!(blocks.len(), 7);
        assert_eq!(blocks[0], 0..16);
        assert_eq!(blocks[6], 96..103);
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 103);
    }

    #[test]
    fn exact_division_has_no_runt_block() {
        let blocks = make_blocks(64, 16);
        assert_eq!(blocks.len(), 4);
        assert!(blocks.iter().all(|b| b.len() == 16));
        assert!(make_blocks(0, 16).is_empty());
    }

    #[test]
    fn block_coloring_valid_on_grid() {
        let m = quad_channel(16, 12).mesh;
        let blocks = make_blocks(m.n_edges(), 32);
        let c = color_blocks(&blocks, &[&m.edge2cell]);
        validate_block_coloring(&blocks, &[&m.edge2cell], &c).unwrap();
        assert!(c.n_colors >= 2, "adjacent blocks must differ");
        assert!(c.n_colors <= 8, "got {}", c.n_colors);
    }

    #[test]
    fn block_coloring_valid_on_irregular_mesh() {
        let m = perturbed_quads(14, 10, 0.3, 77);
        for bs in [8usize, 37, 128] {
            let blocks = make_blocks(m.n_edges(), bs);
            let c = color_blocks(&blocks, &[&m.edge2cell]);
            validate_block_coloring(&blocks, &[&m.edge2cell], &c).unwrap();
        }
    }

    #[test]
    fn direct_loop_blocks_single_color() {
        let blocks = make_blocks(100, 10);
        let c = color_blocks(&blocks, &[]);
        assert_eq!(c.n_colors, 1);
        assert!(c.colors.iter().all(|&x| x == 0));
    }

    #[test]
    fn one_block_per_element_degenerates_to_element_coloring() {
        let m = quad_channel(5, 5).mesh;
        let blocks = make_blocks(m.n_edges(), 1);
        let c = color_blocks(&blocks, &[&m.edge2cell]);
        validate_block_coloring(&blocks, &[&m.edge2cell], &c).unwrap();
        let ec = crate::coloring::color_elements(&[&m.edge2cell]);
        // both are valid greedy colorings of the same conflict graph
        assert_eq!(c.colors.len(), ec.colors.len());
        crate::coloring::validate_coloring(&[&m.edge2cell], &c).unwrap();
    }

    #[test]
    fn fewer_bigger_blocks_use_fewer_or_equal_colors() {
        let m = quad_channel(20, 20).mesh;
        let small = color_blocks(&make_blocks(m.n_edges(), 8), &[&m.edge2cell]);
        let large = color_blocks(&make_blocks(m.n_edges(), 256), &[&m.edge2cell]);
        // no strict theorem here, but for grid meshes block growth should
        // not explode the color count
        assert!(large.n_colors <= small.n_colors + 2);
    }
}
