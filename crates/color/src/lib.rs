//! # ump-color — race-free execution plans by coloring
//!
//! Most unstructured-mesh loops indirectly *increment* data through
//! mappings (`res_calc` incrementing cell residuals from an edge loop), so
//! different iterations may race. OP2 — and this crate — removes the races
//! by coloring (paper §3–4):
//!
//! * **Two-level** (the "original" scheme): the iteration set is split
//!   into contiguous *blocks* (mini-partitions); blocks that write to a
//!   common target get different *block colors*, so all blocks of one
//!   color run concurrently (OpenMP threads / CUDA blocks / OpenCL
//!   work-groups). Inside a block, elements get *element colors* used to
//!   serialize the indirect increments (SIMT colored increment, SIMD
//!   serialized scatter).
//! * **Full permute**: one global element coloring; execution order is a
//!   permutation grouping elements by color. All elements of a color are
//!   independent — vector lanes can scatter freely — but temporal locality
//!   between neighboring elements is destroyed.
//! * **Block permute**: elements are permuted by color *within* each
//!   block, keeping the block's working set cache-resident while still
//!   making the lanes of each color group independent.
//!
//! The paper introduces the last two precisely to let compilers and
//! gather/scatter-capable hardware (Xeon Phi, K40) vectorize the
//! increment loop, and finds (Fig. 8a) that the original scheme still wins
//! — a result the locality statistics in [`stats`] let us reproduce.

#![deny(missing_docs)]

pub mod blocks;
pub mod coloring;
pub mod plan;
pub mod stats;

pub use blocks::{color_blocks, make_blocks};
pub use coloring::{color_elements, Coloring};
pub use plan::{BlockPermutePlan, FullPermutePlan, PlanInputs, TwoLevelPlan};
pub use stats::PlanStats;
