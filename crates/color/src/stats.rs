//! Plan statistics: the locality and serialization quantities the paper's
//! performance analysis (§6) reasons with.
//!
//! * **Reuse factor** — indirect references per unique target inside a
//!   block: how much gather traffic caching can absorb when the block's
//!   working set is resident ("as long as blocks are small enough so that
//!   their data is contained in cache, this permits data reuse").
//! * **Serialization depth** — element colors per block: how many
//!   sequential passes the colored increment costs a vector unit.
//! * **Lane utilization** — fraction of full vector packets when each
//!   color group is chopped into `lanes`-wide chunks (the "small blocks
//!   may suffer from the underutilization of vector lanes" effect of the
//!   block-permute scheme).

use ump_mesh::MapTable;

use crate::plan::{BlockPermutePlan, FullPermutePlan, TwoLevelPlan};

/// Aggregate statistics of an execution plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStats {
    /// Number of blocks (1 for full-permute plans).
    pub n_blocks: usize,
    /// Number of block colors.
    pub n_block_colors: u32,
    /// Maximum per-block element colors (serialization depth).
    pub max_elem_colors: u32,
    /// Mean indirect references per unique target within a block (or
    /// within a color group for full permute) — ≥ 1; higher is better.
    pub reuse_factor: f64,
    /// Fraction of elements that fill complete `lanes`-wide packets.
    pub lane_utilization: f64,
}

fn reuse_of_groups(groups: impl Iterator<Item = Vec<u32>>, maps: &[&MapTable]) -> f64 {
    let mut total_refs = 0usize;
    let mut total_unique = 0usize;
    let mut seen = std::collections::HashSet::new();
    for group in groups {
        for m in maps {
            seen.clear();
            for &e in &group {
                for &t in m.row(e as usize) {
                    total_refs += 1;
                    seen.insert(t);
                }
            }
            total_unique += seen.len();
        }
    }
    if total_unique == 0 {
        1.0
    } else {
        total_refs as f64 / total_unique as f64
    }
}

fn utilization(group_sizes: impl Iterator<Item = usize>, lanes: usize) -> f64 {
    let mut full = 0usize;
    let mut total = 0usize;
    for g in group_sizes {
        total += g;
        full += (g / lanes) * lanes;
    }
    if total == 0 {
        1.0
    } else {
        full as f64 / total as f64
    }
}

impl PlanStats {
    /// Statistics of a two-level plan. Reuse is measured over whole
    /// blocks (the cache-resident unit); lane utilization over blocks,
    /// since the SIMD backend sweeps each block contiguously.
    pub fn of_two_level(plan: &TwoLevelPlan, maps: &[&MapTable], lanes: usize) -> PlanStats {
        PlanStats {
            n_blocks: plan.blocks.len(),
            n_block_colors: plan.block_colors.n_colors,
            max_elem_colors: plan.max_elem_colors(),
            reuse_factor: reuse_of_groups(plan.blocks.iter().map(|r| r.clone().collect()), maps),
            lane_utilization: utilization(plan.blocks.iter().map(|b| b.len()), lanes),
        }
    }

    /// Statistics of a full-permute plan. Reuse is measured over color
    /// groups — the execution unit — which is what destroys locality.
    pub fn of_full_permute(plan: &FullPermutePlan, maps: &[&MapTable], lanes: usize) -> PlanStats {
        PlanStats {
            n_blocks: 1,
            n_block_colors: plan.coloring.n_colors,
            max_elem_colors: 1,
            reuse_factor: reuse_of_groups(plan.color_groups().map(<[u32]>::to_vec), maps),
            lane_utilization: utilization(plan.color_groups().map(<[u32]>::len), lanes),
        }
    }

    /// Statistics of a block-permute plan. Reuse over blocks (the cache
    /// unit), lane utilization over (block, color) groups (the vector
    /// unit).
    pub fn of_block_permute(
        plan: &BlockPermutePlan,
        maps: &[&MapTable],
        lanes: usize,
    ) -> PlanStats {
        let max_elem_colors = plan
            .color_offsets
            .iter()
            .map(|o| o.len() as u32 - 1)
            .max()
            .unwrap_or(0);
        let group_sizes = (0..plan.blocks.len())
            .flat_map(|b| plan.block_groups(b).map(<[u32]>::len).collect::<Vec<_>>());
        PlanStats {
            n_blocks: plan.blocks.len(),
            n_block_colors: plan.block_colors.n_colors,
            max_elem_colors,
            reuse_factor: reuse_of_groups(plan.blocks.iter().map(|r| r.clone().collect()), maps),
            lane_utilization: utilization(group_sizes, lanes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanInputs;
    use ump_mesh::generators::quad_channel;

    fn setup(bs: usize) -> (ump_mesh::Mesh2d, usize) {
        (quad_channel(24, 16).mesh, bs)
    }

    #[test]
    fn two_level_reuse_exceeds_one() {
        let (m, bs) = setup(128);
        let inp = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], bs);
        let plan = TwoLevelPlan::build(&inp);
        let stats = PlanStats::of_two_level(&plan, &[&m.edge2cell], 4);
        // each interior cell is touched by 4 edges; blocks of 128 edges
        // should realize a large part of that reuse
        assert!(stats.reuse_factor > 1.5, "reuse {}", stats.reuse_factor);
        assert!(stats.lane_utilization > 0.9);
        assert!(stats.max_elem_colors >= 2);
    }

    #[test]
    fn full_permute_reuse_is_near_one_within_groups() {
        let (m, _) = setup(0);
        let inp = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 128);
        let fp = FullPermutePlan::build(&inp);
        let stats = PlanStats::of_full_permute(&fp, &[&m.edge2cell], 4);
        // a color group never repeats a target (that is its definition)
        assert!(
            (stats.reuse_factor - 1.0).abs() < 1e-9,
            "reuse {}",
            stats.reuse_factor
        );
        assert_eq!(stats.max_elem_colors, 1);
        assert!(stats.lane_utilization > 0.9, "big groups, high utilization");
    }

    #[test]
    fn block_permute_keeps_block_reuse_but_splits_lanes() {
        let (m, bs) = setup(64);
        let inp = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], bs);
        let two = TwoLevelPlan::build(&inp);
        let bp = BlockPermutePlan::build(&inp);
        let st_two = PlanStats::of_two_level(&two, &[&m.edge2cell], 8);
        let st_bp = PlanStats::of_block_permute(&bp, &[&m.edge2cell], 8);
        // same blocks, same reuse
        assert!((st_two.reuse_factor - st_bp.reuse_factor).abs() < 1e-9);
        // …but chopping blocks into color groups wastes lanes
        assert!(
            st_bp.lane_utilization < st_two.lane_utilization,
            "bp {} vs two {}",
            st_bp.lane_utilization,
            st_two.lane_utilization
        );
    }

    #[test]
    fn small_blocks_hurt_lane_utilization() {
        let (m, _) = setup(0);
        let inp8 = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 8);
        let inp256 = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 256);
        let bp8 = PlanStats::of_block_permute(&BlockPermutePlan::build(&inp8), &[&m.edge2cell], 8);
        let bp256 =
            PlanStats::of_block_permute(&BlockPermutePlan::build(&inp256), &[&m.edge2cell], 8);
        assert!(
            bp8.lane_utilization < bp256.lane_utilization,
            "8: {}, 256: {}",
            bp8.lane_utilization,
            bp256.lane_utilization
        );
    }

    #[test]
    fn direct_loop_stats_are_benign() {
        let inp = PlanInputs::new(1000, vec![], 128);
        let plan = TwoLevelPlan::build(&inp);
        let stats = PlanStats::of_two_level(&plan, &[], 4);
        assert_eq!(stats.reuse_factor, 1.0);
        assert_eq!(stats.max_elem_colors, 1);
        assert_eq!(stats.n_block_colors, 1);
    }
}
