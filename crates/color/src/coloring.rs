//! Greedy element coloring on the indirect-write conflict relation.
//!
//! Two iteration-set elements conflict when they reference a common target
//! through any *written* (INC/WRITE/RW) mapping argument of the loop.
//! First-fit greedy coloring in element order is what OP2's plan
//! construction uses; it is deterministic, and on mesh loops (bounded
//! degree) yields the small color counts the paper reports (4 colors for
//! an edges→cells increment on a quad grid).

use ump_mesh::{Csr, MapTable};

/// A coloring of an iteration set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Coloring {
    /// Color of each element, in `[0, n_colors)`.
    pub colors: Vec<u32>,
    /// Number of distinct colors.
    pub n_colors: u32,
}

impl Coloring {
    /// Number of elements of each color.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.n_colors as usize];
        for &c in &self.colors {
            h[c as usize] += 1;
        }
        h
    }

    /// Group element ids by color: returns `(perm, offsets)` where
    /// `perm[offsets[c]..offsets[c+1]]` lists the elements of color `c`,
    /// each group preserving ascending element order (stable).
    pub fn group_by_color(&self) -> (Vec<u32>, Vec<u32>) {
        let h = self.histogram();
        let mut offsets = Vec::with_capacity(h.len() + 1);
        offsets.push(0u32);
        for &c in &h {
            offsets.push(offsets.last().unwrap() + c as u32);
        }
        let mut cursor: Vec<u32> = offsets[..h.len()].to_vec();
        let mut perm = vec![0u32; self.colors.len()];
        for (e, &c) in self.colors.iter().enumerate() {
            perm[cursor[c as usize] as usize] = e as u32;
            cursor[c as usize] += 1;
        }
        (perm, offsets)
    }
}

/// Inverted reference lists for a set of written maps: for each map, the
/// CSR from target to referencing elements. Shared between element and
/// block coloring so the inversion cost is paid once per loop shape.
pub struct Inversions {
    inv: Vec<Csr>,
}

impl Inversions {
    /// Invert every written map of a loop.
    pub fn build(written_maps: &[&MapTable]) -> Inversions {
        Inversions {
            inv: written_maps.iter().map(|m| m.invert()).collect(),
        }
    }

    /// Iterate `(map_index, target, co-referencing elements)` for an
    /// element's written targets.
    fn conflicts_of<'a>(
        &'a self,
        written_maps: &'a [&MapTable],
        e: usize,
    ) -> impl Iterator<Item = &'a [i32]> + 'a {
        written_maps
            .iter()
            .zip(&self.inv)
            .flat_map(move |(m, inv)| m.row(e).iter().map(move |&t| inv.row(t as usize)))
    }
}

/// First-fit greedy coloring of the `from` set of the given written maps.
///
/// All maps must share the same `from` set size. With no written maps
/// (a direct loop) every element gets color 0.
pub fn color_elements(written_maps: &[&MapTable]) -> Coloring {
    color_elements_with(written_maps, &Inversions::build(written_maps))
}

/// As [`color_elements`], reusing prebuilt [`Inversions`].
pub fn color_elements_with(written_maps: &[&MapTable], inv: &Inversions) -> Coloring {
    let n = written_maps.first().map_or(0, |m| m.from_size);
    for m in written_maps {
        assert_eq!(m.from_size, n, "written maps must share an iteration set");
    }
    let mut colors = vec![u32::MAX; n];
    let mut n_colors = 0u32;
    let mut forbidden: u64;
    for e in 0..n {
        forbidden = 0;
        let mut overflow: Vec<u32> = Vec::new();
        for others in inv.conflicts_of(written_maps, e) {
            for &o in others {
                let c = colors[o as usize];
                if c != u32::MAX {
                    if c < 64 {
                        forbidden |= 1 << c;
                    } else {
                        overflow.push(c);
                    }
                }
            }
        }
        let mut c = forbidden.trailing_ones();
        if c >= 64 || !overflow.is_empty() {
            // rare path: linear scan above 64 colors
            let mut used: Vec<u32> = overflow;
            for bit in 0..64 {
                if forbidden >> bit & 1 == 1 {
                    used.push(bit);
                }
            }
            used.sort_unstable();
            used.dedup();
            c = 0;
            for &u in &used {
                if u == c {
                    c += 1;
                } else if u > c {
                    break;
                }
            }
        }
        colors[e] = c;
        n_colors = n_colors.max(c + 1);
    }
    if n == 0 {
        n_colors = 0;
    }
    Coloring { colors, n_colors }
}

/// Check that a coloring is race-free: no two elements of the same color
/// share a written target. Returns the offending pair on failure.
pub fn validate_coloring(
    written_maps: &[&MapTable],
    coloring: &Coloring,
) -> Result<(), (usize, usize)> {
    for m in written_maps {
        let inv = m.invert();
        for t in 0..inv.rows() {
            let elems = inv.row(t);
            for (i, &a) in elems.iter().enumerate() {
                for &b in &elems[i + 1..] {
                    if coloring.colors[a as usize] == coloring.colors[b as usize] {
                        return Err((a as usize, b as usize));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::generators::{perturbed_quads, quad_channel, tri_coastal};

    #[test]
    fn edge_to_cell_coloring_is_valid_and_small() {
        let m = quad_channel(12, 9).mesh;
        let c = color_elements(&[&m.edge2cell]);
        validate_coloring(&[&m.edge2cell], &c).unwrap();
        // quad grid interior edges 4-color like a brick wall; a few more
        // colors can appear near the boundary
        assert!(c.n_colors >= 2 && c.n_colors <= 6, "got {}", c.n_colors);
    }

    #[test]
    fn triangle_mesh_coloring_valid() {
        let m = tri_coastal(10, 7).mesh;
        let c = color_elements(&[&m.edge2cell]);
        validate_coloring(&[&m.edge2cell], &c).unwrap();
        assert!(c.n_colors <= 6);
    }

    #[test]
    fn multiple_written_maps_all_respected() {
        // loop writing both cells (edge2cell) and nodes (edge2node):
        let m = quad_channel(6, 6).mesh;
        let maps: Vec<&ump_mesh::MapTable> = vec![&m.edge2cell, &m.edge2node];
        let c = color_elements(&maps);
        validate_coloring(&maps, &c).unwrap();
        // node conflicts are denser than cell conflicts
        let cell_only = color_elements(&[&m.edge2cell]);
        assert!(c.n_colors >= cell_only.n_colors);
    }

    #[test]
    fn direct_loop_has_single_color() {
        let c = color_elements(&[]);
        assert_eq!(c.n_colors, 0);
        assert!(c.colors.is_empty());
    }

    #[test]
    fn histogram_and_grouping_are_consistent() {
        let m = perturbed_quads(9, 6, 0.25, 11);
        let c = color_elements(&[&m.edge2cell]);
        let h = c.histogram();
        assert_eq!(h.iter().sum::<usize>(), m.n_edges());
        let (perm, offsets) = c.group_by_color();
        assert_eq!(perm.len(), m.n_edges());
        assert_eq!(offsets.len() as u32, c.n_colors + 1);
        for col in 0..c.n_colors as usize {
            let group = &perm[offsets[col] as usize..offsets[col + 1] as usize];
            assert_eq!(group.len(), h[col]);
            for &e in group {
                assert_eq!(c.colors[e as usize], col as u32);
            }
            // stability: ascending element ids within a group
            for w in group.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn greedy_is_deterministic() {
        let m = quad_channel(8, 8).mesh;
        let a = color_elements(&[&m.edge2cell]);
        let b = color_elements(&[&m.edge2cell]);
        assert_eq!(a, b);
    }

    #[test]
    fn validator_catches_bad_coloring() {
        let m = quad_channel(4, 4).mesh;
        let mut c = color_elements(&[&m.edge2cell]);
        // sabotage: force all colors equal
        for v in &mut c.colors {
            *v = 0;
        }
        c.n_colors = 1;
        assert!(validate_coloring(&[&m.edge2cell], &c).is_err());
    }
}
