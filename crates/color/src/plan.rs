//! Execution plans: the three coloring schemes of the paper.
//!
//! A plan is computed once per (loop shape, block size) and cached by the
//! runtime — OP2's `op_plan_get`. See the crate docs for the semantics of
//! each scheme.

use std::ops::Range;

use ump_mesh::MapTable;

use crate::blocks::{color_blocks, make_blocks};
use crate::coloring::{color_elements, Coloring};

/// What a plan is built from: the iteration-set size and the maps through
/// which the loop *writes* (INC/WRITE/RW indirect arguments).
#[derive(Clone)]
pub struct PlanInputs<'a> {
    /// Iteration-set size.
    pub n_elems: usize,
    /// Written maps (all with `from_size == n_elems`).
    pub written_maps: Vec<&'a MapTable>,
    /// Mini-partition size for the block-based schemes.
    pub block_size: usize,
}

impl<'a> PlanInputs<'a> {
    /// Convenience constructor.
    pub fn new(n_elems: usize, written_maps: Vec<&'a MapTable>, block_size: usize) -> Self {
        for m in &written_maps {
            assert_eq!(m.from_size, n_elems, "map/set size mismatch");
        }
        PlanInputs {
            n_elems,
            written_maps,
            block_size,
        }
    }

    /// Plan inputs for a *fused group* of loops over one iteration set:
    /// the union of the group members' written maps, deduplicated by map
    /// name and sorted by name so the result is canonical — the same
    /// group composition always yields the same plan-cache key. A plan
    /// colored by the union respects every member's write conflicts, so
    /// one colored dispatch can execute the whole group.
    pub fn merged(
        n_elems: usize,
        written: impl IntoIterator<Item = &'a MapTable>,
        block_size: usize,
    ) -> PlanInputs<'a> {
        let mut maps: Vec<&'a MapTable> = written.into_iter().collect();
        maps.sort_by(|a, b| a.name.cmp(&b.name));
        maps.dedup_by(|a, b| a.name == b.name);
        PlanInputs::new(n_elems, maps, block_size)
    }
}

// ---------------------------------------------------------------------------

/// The "original" two-level plan (paper §3): colored blocks for thread
/// concurrency, element colors inside each block to serialize indirect
/// increments.
#[derive(Clone, Debug)]
pub struct TwoLevelPlan {
    /// Contiguous element ranges (mini-partitions).
    pub blocks: Vec<Range<u32>>,
    /// Block coloring.
    pub block_colors: Coloring,
    /// Block ids grouped by color: `blocks_by_color[c]` lists the blocks
    /// a thread team may execute concurrently.
    pub blocks_by_color: Vec<Vec<u32>>,
    /// Per-element color *within its block* (0 for direct loops).
    pub elem_colors: Vec<u32>,
    /// Number of element colors in each block.
    pub n_elem_colors: Vec<u32>,
}

impl TwoLevelPlan {
    /// Build the plan.
    pub fn build(inputs: &PlanInputs<'_>) -> TwoLevelPlan {
        let blocks = make_blocks(inputs.n_elems, inputs.block_size);
        let block_colors = color_blocks(&blocks, &inputs.written_maps);
        let mut blocks_by_color = vec![Vec::new(); block_colors.n_colors as usize];
        for (b, &c) in block_colors.colors.iter().enumerate() {
            blocks_by_color[c as usize].push(b as u32);
        }
        let (elem_colors, n_elem_colors) =
            color_within_blocks(&blocks, &inputs.written_maps, inputs.n_elems);
        TwoLevelPlan {
            blocks,
            block_colors,
            blocks_by_color,
            elem_colors,
            n_elem_colors,
        }
    }

    /// Maximum element-color count over all blocks (the serialization
    /// depth of the colored increment).
    pub fn max_elem_colors(&self) -> u32 {
        self.n_elem_colors.iter().copied().max().unwrap_or(0)
    }

    /// Check plan invariants (used by tests and `debug_assert!`).
    pub fn validate(&self, inputs: &PlanInputs<'_>) -> Result<(), String> {
        let covered: usize = self.blocks.iter().map(|b| b.len()).sum();
        if covered != inputs.n_elems {
            return Err("blocks do not tile the set".into());
        }
        crate::blocks::validate_block_coloring(
            &self.blocks,
            &inputs.written_maps,
            &self.block_colors,
        )
        .map_err(|(a, b)| format!("blocks {a} and {b} conflict with equal color"))?;
        // same-colored elements within a block must not share targets
        for (bi, r) in self.blocks.iter().enumerate() {
            for m in &inputs.written_maps {
                let mut seen: std::collections::HashMap<(u32, i32), u32> =
                    std::collections::HashMap::new();
                for e in r.clone() {
                    let c = self.elem_colors[e as usize];
                    if c >= self.n_elem_colors[bi] {
                        return Err(format!("element {e} color {c} exceeds block count"));
                    }
                    for &t in m.row(e as usize) {
                        if let Some(&prev) = seen.get(&(c, t)) {
                            return Err(format!(
                                "elements {prev} and {e} in block {bi} share target {t} with color {c}"
                            ));
                        }
                        seen.insert((c, t), e);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Greedy element coloring restricted to conflicts *within* each block.
fn color_within_blocks(
    blocks: &[Range<u32>],
    written_maps: &[&MapTable],
    n_elems: usize,
) -> (Vec<u32>, Vec<u32>) {
    let mut elem_colors = vec![0u32; n_elems];
    let mut n_elem_colors = vec![0u32; blocks.len()];
    if written_maps.is_empty() {
        for (bi, r) in blocks.iter().enumerate() {
            n_elem_colors[bi] = u32::from(!r.is_empty());
        }
        return (elem_colors, n_elem_colors);
    }
    // stamp-dedup per-target masks, reset implicitly per block
    let mut masks: Vec<Vec<u64>> = written_maps.iter().map(|m| vec![0u64; m.to_size]).collect();
    let mut stamps: Vec<Vec<u32>> = written_maps
        .iter()
        .map(|m| vec![u32::MAX; m.to_size])
        .collect();
    for (bi, r) in blocks.iter().enumerate() {
        let mut block_max = 0u32;
        for e in r.clone() {
            let mut forbidden = 0u64;
            for ((m, masks), stamps) in written_maps.iter().zip(&masks).zip(&stamps) {
                for &t in m.row(e as usize) {
                    if stamps[t as usize] == bi as u32 {
                        forbidden |= masks[t as usize];
                    }
                }
            }
            let c = forbidden.trailing_ones();
            assert!(c < 64, "element coloring exceeded 64 colors within a block");
            elem_colors[e as usize] = c;
            block_max = block_max.max(c + 1);
            for ((m, masks), stamps) in written_maps.iter().zip(&mut masks).zip(&mut stamps) {
                for &t in m.row(e as usize) {
                    if stamps[t as usize] != bi as u32 {
                        stamps[t as usize] = bi as u32;
                        masks[t as usize] = 0;
                    }
                    masks[t as usize] |= 1 << c;
                }
            }
        }
        n_elem_colors[bi] = block_max;
    }
    (elem_colors, n_elem_colors)
}

// ---------------------------------------------------------------------------

/// The "full permute" plan (paper §4): a single global coloring; elements
/// executed color by color through a permutation. Lanes within a color
/// are independent (vector scatters are safe) but locality suffers.
#[derive(Clone, Debug)]
pub struct FullPermutePlan {
    /// Global element coloring.
    pub coloring: Coloring,
    /// Permutation grouping elements by color.
    pub perm: Vec<u32>,
    /// `perm[offsets[c]..offsets[c+1]]` is the color-`c` group.
    pub offsets: Vec<u32>,
}

impl FullPermutePlan {
    /// Build the plan.
    pub fn build(inputs: &PlanInputs<'_>) -> FullPermutePlan {
        let coloring = if inputs.written_maps.is_empty() {
            Coloring {
                colors: vec![0; inputs.n_elems],
                n_colors: u32::from(inputs.n_elems > 0),
            }
        } else {
            color_elements(&inputs.written_maps)
        };
        let (perm, offsets) = coloring.group_by_color();
        FullPermutePlan {
            coloring,
            perm,
            offsets,
        }
    }

    /// Element groups by color.
    pub fn color_groups(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.coloring.n_colors as usize)
            .map(move |c| &self.perm[self.offsets[c] as usize..self.offsets[c + 1] as usize])
    }

    /// Check plan invariants.
    pub fn validate(&self, inputs: &PlanInputs<'_>) -> Result<(), String> {
        let mut sorted = self.perm.clone();
        sorted.sort_unstable();
        if sorted != (0..inputs.n_elems as u32).collect::<Vec<_>>() {
            return Err("perm is not a permutation".into());
        }
        crate::coloring::validate_coloring(&inputs.written_maps, &self.coloring)
            .map_err(|(a, b)| format!("elements {a},{b} conflict with equal color"))
    }
}

// ---------------------------------------------------------------------------

/// The "block permute" plan (paper §4): blocks as in the two-level plan,
/// but each block's elements are *permuted by color* so that within one
/// (block, color) group every lane is independent — vectorizable
/// scatters with block-local temporal locality.
#[derive(Clone, Debug)]
pub struct BlockPermutePlan {
    /// Contiguous element ranges (mini-partitions).
    pub blocks: Vec<Range<u32>>,
    /// Block coloring (for thread-level concurrency, as in two-level).
    pub block_colors: Coloring,
    /// Block ids grouped by color.
    pub blocks_by_color: Vec<Vec<u32>>,
    /// Within-block execution order: `perm[b.start..b.end]` lists block
    /// `b`'s elements sorted by element color.
    pub perm: Vec<u32>,
    /// Per-block color offsets into the block's own `perm` segment:
    /// group `c` of block `b` is
    /// `perm[b.start + color_offsets[b][c] .. b.start + color_offsets[b][c+1]]`.
    pub color_offsets: Vec<Vec<u32>>,
}

impl BlockPermutePlan {
    /// Build the plan.
    pub fn build(inputs: &PlanInputs<'_>) -> BlockPermutePlan {
        let blocks = make_blocks(inputs.n_elems, inputs.block_size);
        let block_colors = color_blocks(&blocks, &inputs.written_maps);
        let mut blocks_by_color = vec![Vec::new(); block_colors.n_colors as usize];
        for (b, &c) in block_colors.colors.iter().enumerate() {
            blocks_by_color[c as usize].push(b as u32);
        }
        let (elem_colors, n_elem_colors) =
            color_within_blocks(&blocks, &inputs.written_maps, inputs.n_elems);
        let mut perm = vec![0u32; inputs.n_elems];
        let mut color_offsets = Vec::with_capacity(blocks.len());
        for (bi, r) in blocks.iter().enumerate() {
            let ncol = n_elem_colors[bi] as usize;
            let mut hist = vec![0u32; ncol + 1];
            for e in r.clone() {
                hist[elem_colors[e as usize] as usize + 1] += 1;
            }
            for c in 0..ncol {
                hist[c + 1] += hist[c];
            }
            let offsets = hist.clone();
            let mut cursor = hist;
            for e in r.clone() {
                let c = elem_colors[e as usize] as usize;
                perm[r.start as usize + cursor[c] as usize] = e;
                cursor[c] += 1;
            }
            color_offsets.push(offsets);
        }
        BlockPermutePlan {
            blocks,
            block_colors,
            blocks_by_color,
            perm,
            color_offsets,
        }
    }

    /// The color groups of one block: slices of element ids, each group
    /// internally conflict-free.
    pub fn block_groups(&self, b: usize) -> impl Iterator<Item = &[u32]> + '_ {
        let r = self.blocks[b].clone();
        let offs = &self.color_offsets[b];
        (0..offs.len() - 1).map(move |c| {
            &self.perm[r.start as usize + offs[c] as usize..r.start as usize + offs[c + 1] as usize]
        })
    }

    /// Check plan invariants.
    pub fn validate(&self, inputs: &PlanInputs<'_>) -> Result<(), String> {
        let mut sorted = self.perm.clone();
        sorted.sort_unstable();
        if sorted != (0..inputs.n_elems as u32).collect::<Vec<_>>() {
            return Err("perm is not a permutation".into());
        }
        crate::blocks::validate_block_coloring(
            &self.blocks,
            &inputs.written_maps,
            &self.block_colors,
        )
        .map_err(|(a, b)| format!("blocks {a},{b} conflict with equal color"))?;
        for b in 0..self.blocks.len() {
            for group in self.block_groups(b) {
                for m in &inputs.written_maps {
                    let mut seen = std::collections::HashSet::new();
                    for &e in group {
                        for &t in m.row(e as usize) {
                            if !seen.insert(t) {
                                return Err(format!(
                                    "block {b} color group has duplicate target {t}"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::generators::{perturbed_quads, quad_channel, tri_coastal};

    fn inputs(mesh: &ump_mesh::Mesh2d, bs: usize) -> PlanInputs<'_> {
        PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], bs)
    }

    #[test]
    fn two_level_plan_on_grid_is_valid() {
        let m = quad_channel(12, 8).mesh;
        let inp = inputs(&m, 24);
        let plan = TwoLevelPlan::build(&inp);
        plan.validate(&inp).unwrap();
        assert!(plan.max_elem_colors() >= 2, "increments must serialize");
        assert!(plan.blocks_by_color.iter().map(Vec::len).sum::<usize>() == plan.blocks.len());
    }

    #[test]
    fn full_permute_plan_is_valid() {
        let m = tri_coastal(9, 9).mesh;
        let inp = inputs(&m, 16);
        let plan = FullPermutePlan::build(&inp);
        plan.validate(&inp).unwrap();
        let total: usize = plan.color_groups().map(<[u32]>::len).sum();
        assert_eq!(total, m.n_edges());
    }

    #[test]
    fn block_permute_plan_is_valid() {
        let m = perturbed_quads(11, 7, 0.3, 3);
        for bs in [8usize, 32, 1000] {
            let inp = inputs(&m, bs);
            let plan = BlockPermutePlan::build(&inp);
            plan.validate(&inp).unwrap();
        }
    }

    #[test]
    fn block_permute_groups_have_distinct_targets() {
        let m = quad_channel(10, 10).mesh;
        let inp = inputs(&m, 64);
        let plan = BlockPermutePlan::build(&inp);
        for b in 0..plan.blocks.len() {
            for group in plan.block_groups(b) {
                let mut targets = Vec::new();
                for &e in group {
                    targets.extend_from_slice(m.edge2cell.row(e as usize));
                }
                let before = targets.len();
                targets.sort_unstable();
                targets.dedup();
                assert_eq!(before, targets.len());
            }
        }
    }

    #[test]
    fn direct_loop_plans_are_trivial() {
        let inp = PlanInputs::new(100, vec![], 32);
        let two = TwoLevelPlan::build(&inp);
        two.validate(&inp).unwrap();
        assert_eq!(two.block_colors.n_colors, 1);
        assert_eq!(two.max_elem_colors(), 1);
        let fp = FullPermutePlan::build(&inp);
        fp.validate(&inp).unwrap();
        assert_eq!(fp.coloring.n_colors, 1);
    }

    #[test]
    fn empty_set_plans() {
        let inp = PlanInputs::new(0, vec![], 32);
        let two = TwoLevelPlan::build(&inp);
        assert!(two.blocks.is_empty());
        let fp = FullPermutePlan::build(&inp);
        assert_eq!(fp.coloring.n_colors, 0);
        let bp = BlockPermutePlan::build(&inp);
        assert!(bp.perm.is_empty());
    }

    #[test]
    fn full_permute_destroys_locality_relative_to_block_permute() {
        // Each full-permute color pass sweeps (nearly) the whole set —
        // the cache is cold again on the next pass — while a
        // block-permute color group never leaves its block.
        let m = quad_channel(24, 24).mesh;
        let inp = inputs(&m, 128);
        let fp = FullPermutePlan::build(&inp);
        let bp = BlockPermutePlan::build(&inp);
        let span = |xs: &[u32]| -> usize {
            if xs.is_empty() {
                return 0;
            }
            (*xs.iter().max().unwrap() - *xs.iter().min().unwrap()) as usize
        };
        for group in fp.color_groups().take(2) {
            assert!(
                span(group) > m.n_edges() / 2,
                "full-permute pass should span most of the set"
            );
        }
        for b in 0..bp.blocks.len() {
            for group in bp.block_groups(b) {
                assert!(span(group) < 128, "block-permute group leaves its block");
            }
        }
    }

    #[test]
    fn merged_inputs_dedup_and_sort_by_name() {
        let m = quad_channel(6, 6).mesh;
        // duplicates collapse, order is canonical regardless of input order
        let inp = PlanInputs::merged(m.n_edges(), [&m.edge2node, &m.edge2cell, &m.edge2node], 32);
        let names: Vec<&str> = inp.written_maps.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["edge2cell", "edge2node"]);
        // a union plan is valid for either member's writes alone
        let plan = TwoLevelPlan::build(&inp);
        plan.validate(&inp).unwrap();
        let single = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 32);
        plan.validate(&single).unwrap();
        // empty union degrades to a direct plan
        let direct = PlanInputs::merged(m.n_edges(), [], 32);
        assert!(direct.written_maps.is_empty());
    }

    #[test]
    fn multiple_written_maps_plan() {
        let m = quad_channel(8, 8).mesh;
        let inp = PlanInputs::new(m.n_edges(), vec![&m.edge2cell, &m.edge2node], 32);
        let plan = TwoLevelPlan::build(&inp);
        plan.validate(&inp).unwrap();
        let bp = BlockPermutePlan::build(&inp);
        bp.validate(&inp).unwrap();
    }
}
