//! The cross-product conformance matrix: every backend in the registry
//! (`Backend::all()`) × both applications × two mesh sizes must compute
//! the sequential reference's physics within 1e-12 after 10 steps.
//!
//! The point of the registry is that this file never has to change when
//! a backend is added — a new `Backend` variant registered in
//! `ump_core::backend` and wired into the apps' `step_on` dispatchers is
//! automatically swept here, on CI, against both applications.

use ump_apps::{airfoil, volna};
use ump_core::{Backend, ExecPool, Layout, PlanCache};

const ITERS: usize = 10;
const BLOCK: usize = 48;
const TEAM: usize = 4;

/// (tiny generated mesh, the 60×30 acceptance mesh).
const MESHES: [(usize, usize); 2] = [(12, 8), (60, 30)];

fn run_airfoil(backend: Backend, nx: usize, ny: usize) -> (airfoil::Airfoil<f64>, Vec<f64>, u64) {
    let pool = ExecPool::new(TEAM);
    let cache = PlanCache::new();
    let mut sim = airfoil::Airfoil::<f64>::new(nx, ny);
    let r0 = pool.dispatch_rounds();
    let hist = (0..ITERS)
        .map(|_| airfoil::drivers::step_on(backend, &mut sim, &pool, &cache, 0, BLOCK, None))
        .collect();
    let rounds = pool.dispatch_rounds() - r0;
    (sim, hist, rounds)
}

fn run_volna(backend: Backend, nx: usize, ny: usize) -> (volna::Volna<f64>, Vec<f64>, u64) {
    let pool = ExecPool::new(TEAM);
    let cache = PlanCache::new();
    let mut sim = volna::Volna::<f64>::new(nx, ny);
    let r0 = pool.dispatch_rounds();
    let hist = (0..ITERS)
        .map(|_| volna::drivers::step_on(backend, &mut sim, &pool, &cache, 0, BLOCK, None))
        .collect();
    let rounds = pool.dispatch_rounds() - r0;
    (sim, hist, rounds)
}

#[test]
fn every_backend_matches_sequential_on_airfoil() {
    for (nx, ny) in MESHES {
        let (reference, ref_hist, _) = run_airfoil(Backend::Seq, nx, ny);
        for backend in Backend::all() {
            let (sim, hist, rounds) = run_airfoil(backend, nx, ny);
            for (i, (&rms, &r)) in hist.iter().zip(&ref_hist).enumerate() {
                assert!(
                    (rms - r).abs() <= 1e-12 * (1.0 + r),
                    "{backend} airfoil {nx}x{ny} iter {i}: rms {rms} vs {r}"
                );
            }
            let d = sim.q.max_abs_diff(&reference.q);
            assert!(
                d <= 1e-12,
                "{backend} airfoil {nx}x{ny}: max |Δq| = {d:e} > 1e-12"
            );
            assert!(sim.q.all_finite(), "{backend}: NaN/Inf in q");
            assert_eq!(
                rounds > 0,
                backend.needs_pool(),
                "{backend} airfoil {nx}x{ny}: dispatch_rounds = {rounds}, needs_pool = {}",
                backend.needs_pool()
            );
        }
    }
}

#[test]
fn every_backend_matches_sequential_on_volna() {
    for (nx, ny) in MESHES {
        let (reference, ref_hist, _) = run_volna(Backend::Seq, nx, ny);
        for backend in Backend::all() {
            let (sim, hist, rounds) = run_volna(backend, nx, ny);
            for (i, (&dt, &r)) in hist.iter().zip(&ref_hist).enumerate() {
                assert!(
                    (dt - r).abs() <= 1e-12 * r,
                    "{backend} volna {nx}x{ny} iter {i}: dt {dt} vs {r}"
                );
            }
            let d = sim.w.max_abs_diff(&reference.w);
            assert!(
                d <= 1e-12,
                "{backend} volna {nx}x{ny}: max |Δw| = {d:e} > 1e-12"
            );
            assert!(sim.w.all_finite(), "{backend}: NaN/Inf in w");
            assert_eq!(
                rounds > 0,
                backend.needs_pool(),
                "{backend} volna {nx}x{ny}: dispatch_rounds = {rounds}, needs_pool = {}",
                backend.needs_pool()
            );
        }
    }
}

/// The layout half of the matrix: every backend × both apps must
/// compute the sequential (AoS) reference's physics when the simulation
/// state lives in SoA or AoSoA storage. The fused backends execute
/// natively on the converted layout; the rest convert around each step —
/// both paths must be within 1e-12 of an all-AoS run. The AoSoA block of
/// 6 does not divide either mesh's set sizes, so the packed ragged tail
/// is exercised too.
#[test]
fn every_backend_matches_sequential_under_soa_and_aosoa() {
    let layouts = [Layout::Soa, Layout::AoSoA { block: 6 }];
    let (nx, ny) = (12, 8);
    let (ref_air, ref_air_hist, _) = run_airfoil(Backend::Seq, nx, ny);
    let (ref_vol, ref_vol_hist, _) = run_volna(Backend::Seq, nx, ny);
    for layout in layouts {
        for backend in Backend::all() {
            // airfoil
            {
                let pool = ExecPool::new(TEAM);
                let cache = PlanCache::new();
                let mut sim = airfoil::Airfoil::<f64>::new(nx, ny);
                sim.set_layout(layout);
                let hist: Vec<f64> = (0..ITERS)
                    .map(|_| {
                        airfoil::drivers::step_on(backend, &mut sim, &pool, &cache, 0, BLOCK, None)
                    })
                    .collect();
                for (i, (&rms, &r)) in hist.iter().zip(&ref_air_hist).enumerate() {
                    assert!(
                        (rms - r).abs() <= 1e-12 * (1.0 + r),
                        "{backend} airfoil {} iter {i}: rms {rms} vs {r}",
                        layout.name()
                    );
                }
                assert_eq!(sim.layout(), layout, "{backend} must restore the layout");
                let d = sim.q.max_abs_diff(&ref_air.q);
                assert!(
                    d <= 1e-12,
                    "{backend} airfoil {}: max |Δq| = {d:e} > 1e-12",
                    layout.name()
                );
            }
            // volna
            {
                let pool = ExecPool::new(TEAM);
                let cache = PlanCache::new();
                let mut sim = volna::Volna::<f64>::new(nx, ny);
                sim.set_layout(layout);
                let hist: Vec<f64> = (0..ITERS)
                    .map(|_| {
                        volna::drivers::step_on(backend, &mut sim, &pool, &cache, 0, BLOCK, None)
                    })
                    .collect();
                for (i, (&dt, &r)) in hist.iter().zip(&ref_vol_hist).enumerate() {
                    assert!(
                        (dt - r).abs() <= 1e-12 * r,
                        "{backend} volna {} iter {i}: dt {dt} vs {r}",
                        layout.name()
                    );
                }
                assert_eq!(sim.layout(), layout, "{backend} must restore the layout");
                let d = sim.w.max_abs_diff(&ref_vol.w);
                assert!(
                    d <= 1e-12,
                    "{backend} volna {}: max |Δw| = {d:e} > 1e-12",
                    layout.name()
                );
            }
        }
    }
}

/// The acceptance bound for the composition: fused-SIMD must issue no
/// more pool rounds per step than fused-threaded — the vectorization
/// rides the *same* union-write-set group plans, it must not cost
/// synchronization.
#[test]
fn fused_simd_issues_no_more_rounds_than_fused_threaded() {
    let rounds_of_airfoil = |backend: Backend| run_airfoil(backend, 60, 30).2;
    let rounds_of_volna = |backend: Backend| run_volna(backend, 60, 30).2;
    for lanes in [4usize, 8] {
        let fused_simd = Backend::FusedSimd { lanes };
        assert!(
            rounds_of_airfoil(fused_simd) <= rounds_of_airfoil(Backend::Fused),
            "airfoil fused_simd{lanes} issued more rounds than fused"
        );
        assert!(
            rounds_of_volna(fused_simd) <= rounds_of_volna(Backend::Fused),
            "volna fused_simd{lanes} issued more rounds than fused"
        );
    }
}
