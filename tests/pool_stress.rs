//! Concurrency stress tests for the persistent worker pool: one
//! `ExecPool` reused across hundreds of color rounds, across *different*
//! plans, across both applications, and across message-passing ranks
//! must always reproduce the sequential reference. Run under both the
//! default test harness and `RUST_TEST_THREADS=1` (the suite is
//! scheduling-sensitive by design; CI exercises both).

use ump::apps::airfoil::{drivers as airfoil_drivers, Airfoil};
use ump::apps::volna::{drivers as volna_drivers, mpi as volna_mpi, Volna};
use ump::color::{PlanInputs, TwoLevelPlan};
use ump::core::{ExecPool, PlanCache, SharedDat};
use ump::mesh::generators::quad_channel;

const NX: usize = 24;
const NY: usize = 16;

/// ≥100 airfoil iterations through one reused pool, checked against the
/// sequential reference iteration by iteration (RMS) and at the end
/// (whole flow field).
#[test]
fn hundred_threaded_iterations_through_one_pool_match_sequential() {
    const ITERS: usize = 120;
    let pool = ExecPool::new(4);
    let cache = PlanCache::new();
    let mut reference = Airfoil::<f64>::new(NX, NY);
    let mut threaded = Airfoil::<f64>::new(NX, NY);
    for i in 0..ITERS {
        let r = airfoil_drivers::step_seq(&mut reference, None);
        let t = airfoil_drivers::step_threaded_on(&pool, &mut threaded, &cache, 0, 32, None);
        assert!(
            (t - r).abs() < 1e-10 * (1.0 + r),
            "rms diverged at iter {i}: {t} vs {r}"
        );
    }
    let d = threaded.q.max_abs_diff(&reference.q);
    assert!(d < 1e-10, "flow field diverged after {ITERS} iters: {d:e}");
}

/// One pool serving two structurally different plans (the airfoil edge
/// plan, which needs coloring, and the trivially-parallel cell plan)
/// in strict alternation for many rounds: every pass must account for
/// every element exactly once, and the colored increment must stay
/// race-free.
#[test]
fn pool_reuse_across_edge_and_cell_plans_is_race_free() {
    let mesh = quad_channel(40, 30).mesh;
    let edge_inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 64);
    let edge_plan = TwoLevelPlan::build(&edge_inputs);
    let cell_inputs = PlanInputs::new(mesh.n_cells(), vec![], 64);
    let cell_plan = TwoLevelPlan::build(&cell_inputs);

    let mut expected = vec![0.0f64; mesh.n_cells()];
    for e in 0..mesh.n_edges() {
        let c = mesh.edge2cell.row(e);
        expected[c[0] as usize] += 1.0;
        expected[c[1] as usize] += 1.0;
    }

    let pool = ExecPool::new(4);
    for round in 0..100 {
        // edge plan: two-sided colored increment
        let mut acc = vec![0.0f64; mesh.n_cells()];
        {
            let shared = SharedDat::new(&mut acc);
            pool.colored_blocks(&edge_plan, 0, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                        shared.slice_mut(c[1] as usize, 1)[0] += 1.0;
                    }
                }
            });
        }
        assert_eq!(acc, expected, "edge increment raced at round {round}");

        // cell plan: direct per-cell write
        let mut cells = vec![0u8; mesh.n_cells()];
        {
            let shared = SharedDat::new(&mut cells);
            pool.colored_blocks(&cell_plan, 0, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe { shared.slice_mut(c, 1)[0] += 1 };
                }
            });
        }
        assert!(
            cells.iter().all(|&v| v == 1),
            "cell pass dropped/duplicated work at round {round}"
        );
    }
}

/// The same pool driving both applications back to back (airfoil's
/// edge/cell plans, then volna's three plans) — plans of different
/// meshes, block sizes and arities through one team.
#[test]
fn one_pool_serves_both_applications() {
    const STEPS: usize = 8;
    let pool = ExecPool::new(3);
    let cache = PlanCache::new();

    let mut a_ref = Airfoil::<f64>::new(NX, NY);
    let mut a_thr = Airfoil::<f64>::new(NX, NY);
    let mut v_ref = Volna::<f64>::new(20, 14);
    let mut v_thr = Volna::<f64>::new(20, 14);

    for step in 0..STEPS {
        let ar = airfoil_drivers::step_seq(&mut a_ref, None);
        let at = airfoil_drivers::step_threaded_on(&pool, &mut a_thr, &cache, 0, 32, None);
        assert!((at - ar).abs() < 1e-10 * (1.0 + ar), "airfoil step {step}");
        let vr = volna_drivers::step_seq(&mut v_ref, None);
        let vt = volna_drivers::step_threaded_on(&pool, &mut v_thr, &cache, 0, 32, None);
        assert!((vt - vr).abs() < 1e-12 * vr.max(1e-30), "volna step {step}");
    }
    assert!(a_thr.q.max_abs_diff(&a_ref.q) < 1e-11);
    assert!(v_thr.w.max_abs_diff(&v_ref.w) < 1e-11);
}

/// The volna MPI×threads hybrid (per-rank pools) must agree with the
/// sequential reference, like the scalar MPI backend does.
#[test]
fn volna_mpi_threaded_matches_sequential() {
    const STEPS: usize = 6;
    let mut reference = Volna::<f64>::new(NX, NY);
    let mut hist = Vec::new();
    for _ in 0..STEPS {
        hist.push(volna_drivers::step_seq(&mut reference, None));
    }
    let (w, mpi_hist) = volna_mpi::run_mpi_threaded::<f64>(&reference.case, 2, 2, 32, STEPS);
    for (i, (&a, &b)) in mpi_hist.iter().zip(&hist).enumerate() {
        assert!(
            (a - b).abs() < 1e-12 * b.max(1e-30),
            "dt diverged at step {i}: {a} vs {b}"
        );
    }
    let d = w.max_abs_diff(&reference.w);
    assert!(d < 1e-11, "mpi-threaded flow diverged: {d:e}");
}

/// Dropping pools and creating fresh ones repeatedly must neither leak
/// work nor deadlock (each drop parks, wakes and joins the team).
#[test]
fn pool_lifecycle_churn() {
    let mesh = quad_channel(16, 10).mesh;
    let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 32);
    let plan = TwoLevelPlan::build(&inputs);
    for _ in 0..20 {
        let pool = ExecPool::new(3);
        let mut acc = vec![0.0f64; mesh.n_cells()];
        {
            let shared = SharedDat::new(&mut acc);
            pool.colored_blocks(&plan, 0, |_b, range| {
                for e in range.start as usize..range.end as usize {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                        shared.slice_mut(c[1] as usize, 1)[0] += 1.0;
                    }
                }
            });
        }
        let total: f64 = acc.iter().sum();
        assert_eq!(total, 2.0 * mesh.n_edges() as f64);
    }
}

/// A panicking kernel body must surface as a typed [`PoolPanic`] with
/// the worker's message, and the pool must stay fully reusable — the
/// property the service workers rely on to fail one job and keep
/// serving the rest.
#[test]
fn worker_panic_is_contained_and_pool_stays_reusable() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let pool = ExecPool::new(4);
    for round in 0..10 {
        let err = pool
            .try_run_round(64, 0, 4, &|i| {
                if i == 17 {
                    panic!("boom in round {round}");
                }
            })
            .unwrap_err();
        assert!(
            err.message.contains("boom in round"),
            "panic note lost: {}",
            err.message
        );
        // a healthy round immediately after: every item accounted for
        let count = AtomicUsize::new(0);
        pool.try_run_round(128, 0, 8, &|_i| {
            count.fetch_add(1, Ordering::Relaxed);
        })
        .expect("pool must be reusable after a contained panic");
        assert_eq!(count.load(Ordering::Relaxed), 128);
    }
}

/// An armed `PanicRound` fault fires inside exactly the chosen pool
/// round (on whichever thread pulls the first chunk), is contained as a
/// typed error, and disarming restores the clean path.
#[test]
fn injected_round_panic_is_deterministic_and_contained() {
    use std::sync::Arc;
    use ump::fault::FaultPlan;
    let pool = ExecPool::new(3);
    for _ in 0..3 {
        pool.run_round(16, 0, 4, &|_| {});
    }
    let target = pool.dispatch_rounds() + 2;
    let inj = Arc::new(FaultPlan::new().with_panic_round(target).injector());
    pool.arm_fault(inj.clone());
    let mut failed_at = None;
    for _ in 0..5 {
        let round = pool.dispatch_rounds();
        if let Err(e) = pool.try_run_round(32, 0, 4, &|_| {}) {
            assert!(e.message.contains("injected fault"), "{}", e.message);
            assert!(failed_at.is_none(), "fault fired twice");
            failed_at = Some(round);
        }
    }
    assert_eq!(failed_at, Some(target), "fault fired at the wrong round");
    assert_eq!(inj.injected(), 1);
    pool.disarm_fault();
    pool.run_round(64, 0, 8, &|_| {});
}
