//! Integration: Volna backend equivalence and conservation properties.

use ump_apps::volna::{drivers, Volna};
use ump_core::PlanCache;

const NX: usize = 20;
const NY: usize = 14;
const STEPS: usize = 10;

#[test]
fn mass_is_conserved_exactly_by_construction() {
    let mut sim = Volna::<f64>::new(NX, NY);
    let v0 = sim.total_volume();
    for _ in 0..STEPS {
        let dt = drivers::step_seq(&mut sim, None);
        assert!(dt.is_finite() && dt > 0.0);
    }
    let v1 = sim.total_volume();
    assert!((v1 - v0).abs() < 1e-9 * v0, "volume drifted: {v0} -> {v1}");
    assert!(sim.w.all_finite());
}

#[test]
fn tsunami_wave_propagates_and_decays() {
    let mut sim = Volna::<f64>::new(32, 16);
    let eta0 = sim.max_eta();
    for _ in 0..30 {
        drivers::step_seq(&mut sim, None);
    }
    let eta1 = sim.max_eta();
    // the hump spreads: amplitude decays but the field stays lively
    assert!(eta1 < eta0, "wave should spread: {eta0} -> {eta1}");
    assert!(eta1 > 0.01 * eta0, "wave should not vanish instantly");
    // momentum has appeared
    let momentum: f64 = (0..sim.w.set_size)
        .map(|c| sim.w.row(c)[1].abs() + sim.w.row(c)[2].abs())
        .sum();
    assert!(momentum > 0.0);
}

#[test]
fn near_still_water_stays_near_still() {
    // Without the source, lake-at-rest currents must stay far subcritical:
    // the centered bed-slope source balances the pressure flux to first
    // order (exactly so on a flat bottom; O(Δx²) on the curved shelf).
    // Measure the local Froude number |u|/√(gh) and check it shrinks
    // under refinement.
    let froude_after = |n: usize| -> f64 {
        let mut sim = Volna::<f64>::new(2 * n, n);
        for c in 0..sim.w.set_size {
            let depth = sim.case.bathy_cell[c];
            let r = sim.w.row_mut(c);
            r[0] = depth;
            r[1] = 0.0;
            r[2] = 0.0;
        }
        for _ in 0..20 {
            drivers::step_seq(&mut sim, None);
        }
        assert!(sim.w.all_finite());
        (0..sim.w.set_size)
            .map(|c| {
                let r = sim.w.row(c);
                let h = r[0].max(1e-9);
                (r[1].abs().max(r[2].abs()) / h) / (9.81 * h).sqrt()
            })
            .fold(0.0f64, f64::max)
    };
    let coarse = froude_after(16);
    let fine = froude_after(48);
    assert!(fine < 0.2, "spurious lake-at-rest Froude: {fine}");
    assert!(
        fine < 0.6 * coarse,
        "imbalance should converge away: coarse {coarse}, fine {fine}"
    );
}

#[test]
fn threaded_matches_sequential() {
    let mut a = Volna::<f64>::new(NX, NY);
    let mut b = Volna::<f64>::new(NX, NY);
    let cache = PlanCache::new();
    for i in 0..STEPS {
        let da = drivers::step_seq(&mut a, None);
        let db = drivers::step_threaded(&mut b, &cache, 4, 32, None);
        assert!((da - db).abs() < 1e-12 * da, "dt diverged at step {i}");
    }
    let d = a.w.max_abs_diff(&b.w);
    assert!(d < 1e-11, "threaded diverged: {d}");
}

#[test]
fn simd_matches_sequential() {
    let mut a = Volna::<f64>::new(NX, NY);
    let mut b = Volna::<f64>::new(NX, NY);
    for i in 0..STEPS {
        let da = drivers::step_seq(&mut a, None);
        let db = drivers::step_simd::<f64, 4>(&mut b, None);
        assert!(
            (da - db).abs() < 1e-12 * da.max(1e-30),
            "dt diverged at step {i}"
        );
    }
    let d = a.w.max_abs_diff(&b.w);
    assert!(d < 1e-11, "simd diverged: {d}");
}

#[test]
fn simt_matches_sequential() {
    let mut a = Volna::<f64>::new(NX, NY);
    let mut b = Volna::<f64>::new(NX, NY);
    let cache = PlanCache::new();
    for _ in 0..STEPS {
        drivers::step_seq(&mut a, None);
        drivers::step_simt(&mut b, &cache, 2, 8, 0, 32, None);
    }
    let d = a.w.max_abs_diff(&b.w);
    assert!(d < 1e-11, "simt diverged: {d}");
}

#[test]
fn single_precision_backend_is_stable() {
    // the paper's Volna runs are SP-only: stability and rough agreement
    let mut sp = Volna::<f32>::new(NX, NY);
    let mut dp = Volna::<f64>::new(NX, NY);
    for _ in 0..STEPS {
        drivers::step_simd::<f32, 8>(&mut sp, None);
        drivers::step_seq(&mut dp, None);
    }
    assert!(sp.w.all_finite());
    let vol_rel = (sp.total_volume() - dp.total_volume()).abs() / dp.total_volume();
    assert!(vol_rel < 1e-4, "SP volume drifted {vol_rel}");
}

#[test]
fn wider_lanes_agree() {
    let mut a = Volna::<f32>::new(NX, NY);
    let mut b = Volna::<f32>::new(NX, NY);
    for _ in 0..STEPS {
        drivers::step_simd::<f32, 8>(&mut a, None);
        drivers::step_simd::<f32, 16>(&mut b, None);
    }
    let d = a.w.max_abs_diff(&b.w);
    assert!(d < 1e-4, "lane width changed the physics: {d}");
}

#[test]
fn mpi_backend_matches_sequential() {
    use ump_apps::volna::mpi;
    let mut reference = Volna::<f64>::new(NX, NY);
    let case = reference.case.clone();
    let mut ref_hist = Vec::new();
    for _ in 0..STEPS {
        ref_hist.push(drivers::step_seq(&mut reference, None));
    }
    for ranks in [2usize, 3] {
        let (w, hist) = mpi::run_mpi::<f64>(&case, ranks, STEPS, None);
        let d = reference.w.max_abs_diff(&w);
        assert!(d < 1e-11, "mpi ranks={ranks} diverged: {d}");
        for (i, (&a, &b)) in hist.iter().zip(&ref_hist).enumerate() {
            assert!(
                (a - b).abs() < 1e-12 * (1.0 + b),
                "dt history diverged at step {i}: {a} vs {b} (ranks {ranks})"
            );
        }
    }
}
