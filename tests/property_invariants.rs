//! Cross-crate property tests: the structural invariants that make the
//! backends sound, exercised on randomized meshes, block sizes and
//! partitions rather than the fixed grids of the unit tests.

use proptest::prelude::*;
use ump::color::{
    coloring::validate_coloring, BlockPermutePlan, FullPermutePlan, PlanInputs, TwoLevelPlan,
};
use ump::core::distribute;
use ump::mesh::dual::cell_dual;
use ump::mesh::generators::{perturbed_quads, tri_coastal};
use ump::part::{greedy_bfs, rcb, PartitionQuality};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_level_plans_are_race_free_on_random_meshes(
        nx in 4usize..20,
        ny in 3usize..16,
        amp in 0.0f64..0.4,
        seed in 0u64..1000,
        block in 4usize..200,
    ) {
        let mesh = perturbed_quads(nx, ny, amp, seed);
        let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], block);
        let plan = TwoLevelPlan::build(&inputs);
        prop_assert!(plan.validate(&inputs).is_ok());
    }

    #[test]
    fn permute_plans_are_race_free_on_random_meshes(
        nx in 4usize..16,
        ny in 3usize..12,
        seed in 0u64..1000,
        block in 4usize..128,
    ) {
        let mesh = perturbed_quads(nx, ny, 0.3, seed);
        let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], block);
        let fp = FullPermutePlan::build(&inputs);
        prop_assert!(fp.validate(&inputs).is_ok());
        prop_assert!(validate_coloring(&[&mesh.edge2cell], &fp.coloring).is_ok());
        let bp = BlockPermutePlan::build(&inputs);
        prop_assert!(bp.validate(&inputs).is_ok());
    }

    #[test]
    fn rcb_balance_holds_on_random_point_clouds(
        nx in 6usize..24,
        ny in 4usize..20,
        seed in 0u64..500,
        parts in 2u32..9,
    ) {
        let mesh = perturbed_quads(nx, ny, 0.35, seed);
        prop_assume!(mesh.n_cells() >= parts as usize);
        let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
        let p = rcb(&pts, parts);
        prop_assert!(p.validate().is_ok());
        let sizes = p.sizes();
        let (mn, mx) = (
            *sizes.iter().min().unwrap(),
            *sizes.iter().max().unwrap(),
        );
        prop_assert!(mx - mn <= 1, "rcb imbalance: {sizes:?}");
    }

    #[test]
    fn distribution_covers_and_owns_uniquely(
        nx in 5usize..16,
        ny in 4usize..12,
        parts in 2u32..6,
        use_bfs in any::<bool>(),
    ) {
        let mesh = tri_coastal(nx, ny).mesh;
        prop_assume!(mesh.n_cells() >= parts as usize);
        let partition = if use_bfs {
            greedy_bfs(&cell_dual(&mesh), parts)
        } else {
            let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
            rcb(&pts, parts)
        };
        prop_assume!(partition.validate().is_ok());
        let locals = distribute(&mesh, &partition);

        // every cell owned exactly once
        let mut owned = vec![0usize; mesh.n_cells()];
        for lm in &locals {
            prop_assert!(lm.mesh.validate().is_ok());
            for &g in lm.cell_global.iter().take(lm.n_owned_cells) {
                owned[g as usize] += 1;
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1));

        // every edge executed by 1 (interior to a part) or 2 ranks
        let mut edge_count = vec![0usize; mesh.n_edges()];
        for lm in &locals {
            for &g in &lm.edge_global {
                edge_count[g as usize] += 1;
            }
        }
        for (e, &cnt) in edge_count.iter().enumerate() {
            let r = mesh.edge2cell.row(e);
            let cross = partition.part[r[0] as usize] != partition.part[r[1] as usize];
            prop_assert_eq!(cnt, if cross { 2 } else { 1 });
        }

        // halo send/recv volumes pair up globally
        let sends: usize = locals.iter().map(|lm| lm.cell_halo.send_volume()).sum();
        let recvs: usize = locals.iter().map(|lm| lm.cell_halo.recv_volume()).sum();
        prop_assert_eq!(sends, recvs);
    }

    #[test]
    fn partition_quality_metrics_are_consistent(
        nx in 6usize..20,
        ny in 4usize..16,
        parts in 2u32..7,
    ) {
        let mesh = perturbed_quads(nx, ny, 0.2, 42).clone();
        prop_assume!(mesh.n_cells() >= parts as usize);
        let dual = cell_dual(&mesh);
        let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
        let p = rcb(&pts, parts);
        let q = PartitionQuality::measure(&dual, &p);
        // cut edges bound halo volume from below (each cut edge produces
        // at least one foreign adjacency) and 2x cut bounds it above
        prop_assert!(q.halo_volume <= 2 * q.edge_cut);
        prop_assert!(q.imbalance >= 1.0 - 1e-12);
        // single part sanity
        let p1 = rcb(&pts, 1);
        let q1 = PartitionQuality::measure(&dual, &p1);
        prop_assert_eq!(q1.edge_cut, 0);
    }

    #[test]
    fn airfoil_step_is_deterministic_across_runs(
        nx in 6usize..14,
        ny in 4usize..10,
    ) {
        use ump::apps::airfoil::{drivers, Airfoil};
        let mut a = Airfoil::<f64>::new(nx, ny);
        let mut b = Airfoil::<f64>::new(nx, ny);
        for _ in 0..3 {
            let ra = drivers::step_seq(&mut a, None);
            let rb = drivers::step_seq(&mut b, None);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.q.max_abs_diff(&b.q), 0.0);
    }
}
