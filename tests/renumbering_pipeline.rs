//! Integration: the RCM renumbering pipeline (OP2 renumbers meshes
//! before planning) must preserve the physics exactly — the solution is
//! a permutation of the reference — and must improve the locality
//! statistics the block-based plans depend on.

use ump::apps::airfoil::{drivers, Airfoil};
use ump::color::{PlanInputs, PlanStats, TwoLevelPlan};
use ump::mesh::generators::quad_channel;
use ump::mesh::renumber::{rcm_renumber_mesh, renumber_cells, renumber_nodes, reorder_edges};
use ump::mesh::SplitMix64;

/// Scramble all element numberings of a mesh (what a badly-ordered input
/// file looks like), returning the cell permutation used.
fn scramble(mesh: &mut ump::mesh::Mesh2d, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let mut node_perm: Vec<u32> = (0..mesh.n_nodes() as u32).collect();
    rng.shuffle(&mut node_perm);
    renumber_nodes(mesh, &node_perm);
    let mut cell_perm: Vec<u32> = (0..mesh.n_cells() as u32).collect();
    rng.shuffle(&mut cell_perm);
    renumber_cells(mesh, &cell_perm);
    let mut edge_order: Vec<u32> = (0..mesh.n_edges() as u32).collect();
    rng.shuffle(&mut edge_order);
    reorder_edges(mesh, &edge_order);
    mesh.validate().unwrap();
    cell_perm
}

#[test]
fn rcm_restores_plan_locality_on_scrambled_meshes() {
    let reference = quad_channel(48, 32).mesh;
    let mut scrambled = reference.clone();
    scramble(&mut scrambled, 7);

    let reuse = |mesh: &ump::mesh::Mesh2d| -> f64 {
        let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 256);
        let plan = TwoLevelPlan::build(&inputs);
        PlanStats::of_two_level(&plan, &[&mesh.edge2cell], 4).reuse_factor
    };

    let good = reuse(&reference);
    let bad = reuse(&scrambled);
    assert!(
        bad < good - 0.2,
        "scrambling should hurt block reuse: {good} -> {bad}"
    );

    let mut restored = scrambled.clone();
    let (bw_before, bw_after) = rcm_renumber_mesh(&mut restored);
    assert!(bw_after < bw_before, "RCM should reduce bandwidth");
    restored.validate().unwrap();
    let fixed = reuse(&restored);
    assert!(
        fixed > bad + 0.5 * (good - bad),
        "RCM should recover most reuse: good {good}, scrambled {bad}, rcm {fixed}"
    );
}

#[test]
fn physics_is_invariant_under_renumbering() {
    // run the solver on the reference and on a scrambled copy of the
    // same geometry; the cell permutation must map one solution onto
    // the other exactly (identical arithmetic, different order is
    // absorbed by per-edge/per-cell locality of the kernels — only the
    // rms reduction order changes, hence the tiny tolerance there)
    let case_ref = quad_channel(20, 14);
    let mut case_scr = case_ref.clone();
    let cell_perm = scramble(&mut case_scr.mesh, 42);
    // boundary tags travel with the bedges; recompute them the same way
    // the generator does (direction-based, so geometry decides)
    case_scr.bound = (0..case_scr.mesh.n_bedges())
        .map(|be| {
            let n = case_scr.mesh.bedge2node.row(be);
            let a = case_scr.mesh.node_xy[n[0] as usize];
            let b = case_scr.mesh.node_xy[n[1] as usize];
            if (a[0] - b[0]).abs() > (a[1] - b[1]).abs() {
                ump::mesh::generators::BOUND_WALL
            } else {
                ump::mesh::generators::BOUND_FARFIELD
            }
        })
        .collect();
    // also scramble the reference's bound? no — reference untouched.

    let mut sim_ref = Airfoil::<f64>::from_case(case_ref.clone());
    let mut sim_scr = Airfoil::<f64>::from_case(case_scr);
    let mut last = (0.0, 0.0);
    for _ in 0..5 {
        last = (
            drivers::step_seq(&mut sim_ref, None),
            drivers::step_seq(&mut sim_scr, None),
        );
    }
    // rms: same summands, different order
    assert!(
        (last.0 - last.1).abs() < 1e-12 * (1.0 + last.0),
        "rms diverged: {} vs {}",
        last.0,
        last.1
    );
    // state: scrambled cell c holds the value of reference cell
    // cell_perm^{-1}? — cell_perm maps old (reference) -> new (scrambled)
    for (old, &new) in cell_perm.iter().enumerate() {
        for d in 0..4 {
            let a = sim_ref.q.row(old)[d];
            let b = sim_scr.q.row(new as usize)[d];
            assert!(
                (a - b).abs() < 1e-12 * (1.0 + a.abs()),
                "cell {old}->{new} dim {d}: {a} vs {b}"
            );
        }
    }
}
