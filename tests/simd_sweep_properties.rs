//! Property tests of the lane-sweep machinery behind the fused-SIMD
//! backend: for random ranges, lane counts and alignment bases,
//! `split_sweep` and `ump_core::simd_block_sweep` must tile the range
//! exactly (no element visited twice or skipped), agree with each other,
//! and a fused-SIMD gather/scatter chain over integer-valued data must
//! **bit-match** the scalar sweep — integer arithmetic in f64 is exact,
//! so any lane-coverage or scatter-ordering bug is a hard mismatch.

use std::cell::RefCell;

use proptest::prelude::*;
use ump_core::{
    apply_edge_inc, simd_block_sweep, Access, ArgInfo, ExecPool, LoopProfile, PlanCache, SharedDat,
};
use ump_lazy::{Chain, LoopDesc, Shape};
use ump_mesh::generators::perturbed_quads;
use ump_simd::{split_sweep, IdxVec, VecR};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // split_sweep invariants over arbitrary ranges/lane counts/bases:
    // exact tiling, lane-aligned body, sub-lane sweeps.
    #[test]
    fn split_sweep_tiles_any_range_exactly(
        start in 0usize..200,
        len in 0usize..400,
        lanes in 1usize..17,
        base_back in 0usize..50,
    ) {
        let align_base = start.saturating_sub(base_back);
        let range = start..start + len;
        let s = split_sweep(range.clone(), lanes, align_base);
        prop_assert_eq!(s.len(), len);
        prop_assert_eq!(s.pre.start, range.start);
        prop_assert_eq!(s.pre.end, s.body.start);
        prop_assert_eq!(s.body.end, s.post.start);
        prop_assert_eq!(s.post.end, range.end);
        prop_assert_eq!(s.body.len() % lanes, 0);
        prop_assert!(s.pre.len() < lanes);
        prop_assert!(s.post.len() < lanes);
        if !s.body.is_empty() {
            prop_assert_eq!((s.body.start - align_base) % lanes, 0);
        }
        // every element exactly once
        let mut seen: Vec<usize> = s.scalar_items().collect();
        for c in s.vector_chunks() {
            seen.extend(c..c + lanes);
        }
        seen.sort_unstable();
        let expect: Vec<usize> = range.collect();
        prop_assert_eq!(seen, expect);
    }

    // The pool's lane-aware block sweep agrees with split_sweep at
    // align_base 0: same scalar items, same chunk starts, every element
    // visited exactly once.
    #[test]
    fn simd_block_sweep_agrees_with_split_sweep(
        start in 0u32..300,
        len in 0u32..500,
        lanes in 1usize..17,
    ) {
        let range = start..start + len;
        let reference = split_sweep(start as usize..(start + len) as usize, lanes, 0);
        let scalars = RefCell::new(Vec::new());
        let chunks = RefCell::new(Vec::new());
        simd_block_sweep(
            range,
            lanes,
            &|e| scalars.borrow_mut().push(e),
            &|cs| chunks.borrow_mut().push(cs),
        );
        let expect_scalars: Vec<usize> = reference.scalar_items().collect();
        let expect_chunks: Vec<usize> = reference.vector_chunks().collect();
        prop_assert_eq!(scalars.into_inner(), expect_scalars);
        prop_assert_eq!(chunks.into_inner(), expect_chunks);
    }

    // Fused-SIMD legality end-to-end: a recorded chain (direct fill +
    // indirect gather/scatter through edge2cell) over integer-valued
    // data executed under Shape::Simd at L = 4 and 8, with random block
    // sizes, bit-matches the scalar loop-by-loop reference.
    #[test]
    fn fused_simd_gather_scatter_bit_matches_scalar(
        nx in 3usize..12,
        ny in 3usize..10,
        seed in any::<u64>(),
        bs_sel in 0usize..4,
    ) {
        let mesh = perturbed_quads(nx, ny, 0.25, seed);
        let (ne, nc) = (mesh.n_edges(), mesh.n_cells());
        let block_size = [5usize, 13, 32, 64][bs_sel];

        // scalar reference
        let mut ra = vec![0.0f64; ne];
        let mut racc = vec![0.0f64; nc];
        for e in 0..ne {
            ra[e] = (e % 11 + 1) as f64;
        }
        for e in 0..ne {
            let c = mesh.edge2cell.row(e);
            racc[c[0] as usize] += 3.0 * ra[e];
            racc[c[1] as usize] -= ra[e];
        }

        fn run_lanes<const L: usize>(
            mesh: &ump_mesh::Mesh2d,
            block_size: usize,
        ) -> (Vec<f64>, Vec<f64>) {
            let (ne, nc) = (mesh.n_edges(), mesh.n_cells());
            let pool = ExecPool::new(3);
            let cache = PlanCache::new();
            let mut a = vec![0.0f64; ne];
            let mut acc = vec![0.0f64; nc];
            {
                let av = SharedDat::new(&mut a);
                let accv = SharedDat::new(&mut acc);
                let desc = |name: &str, n: usize, args: Vec<ArgInfo>| {
                    LoopDesc::new(
                        LoopProfile {
                            name: name.into(),
                            set: "edges".into(),
                            args,
                            flops_per_elem: 1.0,
                            transcendentals_per_elem: 0.0,
                            description: String::new(),
                        },
                        n,
                    )
                };
                let mut chain = Chain::new("prop_simd");
                {
                    let av = &av;
                    chain.record_simd(
                        desc("fill", ne, vec![ArgInfo::direct("a", 1, Access::Write)]),
                        vec![],
                        L,
                        move |e| unsafe { av.slice_mut(e, 1)[0] = (e % 11 + 1) as f64 },
                        move |cs| unsafe {
                            let d = av.slice_mut(0, av.len());
                            VecR::<f64, L>::from_fn(|k| ((cs + k) % 11 + 1) as f64).store(d, cs);
                        },
                    );
                }
                {
                    let (av, accv, m) = (&av, &accv, mesh);
                    chain.record_simd_two_phase(
                        desc(
                            "scatter",
                            ne,
                            vec![
                                ArgInfo::direct("a", 1, Access::Read),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 1),
                            ],
                        ),
                        vec![&m.edge2cell],
                        L,
                        move |e| {
                            let c = m.edge2cell.row(e);
                            let v = unsafe { av.slice(e, 1)[0] };
                            (c[0] as usize, [3.0 * v], c[1] as usize, [-v])
                        },
                        move |_e, inc| unsafe { apply_edge_inc(accv, inc) },
                        move |es| unsafe {
                            // lane gather of a, serialized lane scatter
                            // into acc — the fused-SIMD indirect shape
                            let ad = av.slice(0, av.len());
                            let accd = accv.slice_mut(0, accv.len());
                            let e2c = &m.edge2cell.data;
                            let c0 = IdxVec::<L>::load_strided(e2c, es * 2, 2);
                            let c1 = IdxVec::<L>::load_strided(e2c, es * 2 + 1, 2);
                            let v = VecR::<f64, L>::load(ad, es);
                            (v * 3.0).scatter_add_serial(accd, c0, 1, 0);
                            (-v).scatter_add_serial(accd, c1, 1, 0);
                        },
                    );
                }
                chain.execute(
                    &pool,
                    &cache,
                    Shape::Simd { lanes: L },
                    0,
                    block_size,
                    8,
                    None,
                );
            }
            (a, acc)
        }

        let (a4, acc4) = run_lanes::<4>(&mesh, block_size);
        prop_assert_eq!(&a4, &ra, "L=4 fill diverged");
        prop_assert_eq!(&acc4, &racc, "L=4 scatter diverged");
        let (a8, acc8) = run_lanes::<8>(&mesh, block_size);
        prop_assert_eq!(&a8, &ra, "L=8 fill diverged");
        prop_assert_eq!(&acc8, &racc, "L=8 scatter diverged");
    }
}
