//! Property tests of cross-timestep sparse tiling: for random meshes,
//! random tiling configurations, and random steps-per-tile, the tiled
//! executor must reproduce the untiled references on both applications —
//! ≤ 1e-12 against the fused-threaded path on f64 physics, and **bit
//! identical** against plain sequential execution on cell state and on
//! integer-data chains, where any fringe-recompute or halo-growth bug
//! shows up as a hard mismatch instead of a tolerance question.
//!
//! The deterministic tests at the bottom pin the acceptance criteria
//! exactly: ≥4 recorded steps within 1e-12 of fused-threaded with the
//! tiled reduction histories bit-identical under the ordered-fold
//! discipline (any tile size, any team size), the degenerate tilings
//! (one tile, tile ≥ mesh, N = 1), and the dispatch-round win (tiled
//! rounds < N × fused rounds).

use proptest::prelude::*;
use ump_apps::{airfoil, volna};
use ump_core::{Access, ArgInfo, ExecPool, LoopProfile, PlanCache};
use ump_lazy::{LoopDesc, Shape, TiledChain};
use ump_mesh::MapTable;

const TEAM: usize = 4;

// ---------------------------------------------------------------------------
// app harnesses: one (sim, per-step history, dispatch rounds) runner per path
// ---------------------------------------------------------------------------

fn seq_airfoil(nx: usize, ny: usize, seed: u64, steps: usize) -> (airfoil::Airfoil<f64>, Vec<f64>) {
    let mut sim = airfoil::Airfoil::<f64>::seeded(nx, ny, seed);
    let hist = (0..steps)
        .map(|_| airfoil::drivers::step_seq(&mut sim, None))
        .collect();
    (sim, hist)
}

fn fused_airfoil(
    nx: usize,
    ny: usize,
    seed: u64,
    steps: usize,
    block: usize,
) -> (airfoil::Airfoil<f64>, Vec<f64>, u64) {
    let pool = ExecPool::new(TEAM);
    let cache = PlanCache::new();
    let mut sim = airfoil::Airfoil::<f64>::seeded(nx, ny, seed);
    let r0 = pool.dispatch_rounds();
    let hist = (0..steps)
        .map(|_| {
            airfoil::drivers::step_fused_on(
                &pool,
                &mut sim,
                &cache,
                Shape::Threaded,
                0,
                block,
                None,
            )
        })
        .collect();
    let rounds = pool.dispatch_rounds() - r0;
    (sim, hist, rounds)
}

fn tiled_airfoil(
    nx: usize,
    ny: usize,
    seed: u64,
    steps: usize,
    tile_cells: usize,
    block: usize,
) -> (airfoil::Airfoil<f64>, Vec<f64>, u64) {
    tiled_airfoil_team(nx, ny, seed, steps, tile_cells, block, TEAM)
}

fn tiled_airfoil_team(
    nx: usize,
    ny: usize,
    seed: u64,
    steps: usize,
    tile_cells: usize,
    block: usize,
    team: usize,
) -> (airfoil::Airfoil<f64>, Vec<f64>, u64) {
    let pool = ExecPool::new(team);
    let mut sim = airfoil::Airfoil::<f64>::seeded(nx, ny, seed);
    let r0 = pool.dispatch_rounds();
    let hist = airfoil::drivers::run_tiled_on::<f64, 1>(
        &mut sim, &pool, 0, steps, tile_cells, block, None,
    );
    let rounds = pool.dispatch_rounds() - r0;
    (sim, hist, rounds)
}

fn seq_volna(nx: usize, ny: usize, seed: u64, steps: usize) -> (volna::Volna<f64>, Vec<f64>) {
    let mut sim = volna::Volna::<f64>::seeded(nx, ny, seed);
    let hist = (0..steps)
        .map(|_| volna::drivers::step_seq(&mut sim, None))
        .collect();
    (sim, hist)
}

fn fused_volna(
    nx: usize,
    ny: usize,
    seed: u64,
    steps: usize,
    block: usize,
) -> (volna::Volna<f64>, Vec<f64>, u64) {
    let pool = ExecPool::new(TEAM);
    let cache = PlanCache::new();
    let mut sim = volna::Volna::<f64>::seeded(nx, ny, seed);
    let r0 = pool.dispatch_rounds();
    let hist = (0..steps)
        .map(|_| {
            volna::drivers::step_fused_on(&pool, &mut sim, &cache, Shape::Threaded, 0, block, None)
        })
        .collect();
    let rounds = pool.dispatch_rounds() - r0;
    (sim, hist, rounds)
}

fn tiled_volna(
    nx: usize,
    ny: usize,
    seed: u64,
    steps: usize,
    tile_cells: usize,
    block: usize,
) -> (volna::Volna<f64>, Vec<f64>, u64) {
    tiled_volna_team(nx, ny, seed, steps, tile_cells, block, TEAM)
}

fn tiled_volna_team(
    nx: usize,
    ny: usize,
    seed: u64,
    steps: usize,
    tile_cells: usize,
    block: usize,
    team: usize,
) -> (volna::Volna<f64>, Vec<f64>, u64) {
    let pool = ExecPool::new(team);
    let mut sim = volna::Volna::<f64>::seeded(nx, ny, seed);
    let r0 = pool.dispatch_rounds();
    let hist =
        volna::drivers::run_tiled_on::<f64, 1>(&mut sim, &pool, 0, steps, tile_cells, block, None);
    let rounds = pool.dispatch_rounds() - r0;
    (sim, hist, rounds)
}

fn bits(h: &[f64]) -> Vec<u64> {
    h.iter().map(|v| v.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// the integer chain: gather/scatter steps on the 1D path mesh
// ---------------------------------------------------------------------------

fn desc(name: &str, set: &str, n: usize, args: Vec<ArgInfo>) -> LoopDesc {
    LoopDesc::new(
        LoopProfile {
            name: name.into(),
            set: set.into(),
            args,
            flops_per_elem: 1.0,
            transcendentals_per_elem: 0.0,
            description: String::new(),
        },
        n,
    )
}

/// edge `e` → cells `e`, `e+1`.
fn path_edge2cell(n_cells: usize) -> MapTable {
    let n_edges = n_cells - 1;
    let data: Vec<i32> = (0..n_edges as i32).flat_map(|e| [e, e + 1]).collect();
    MapTable::new("edge2cell", n_edges, n_cells, 2, data)
}

/// Tiled: `steps` rounds of `f[e] = u[e] + u[e+1]` then
/// `u[e] += f[e]; u[e+1] += f[e]`, executed through the cone schedule.
fn run_tiled_path(
    map: &MapTable,
    u: &mut [i64],
    f: &mut [i64],
    steps: usize,
    tile_elems: usize,
    block: usize,
) {
    let n_cells = map.to_size;
    let n_edges = map.from_size;
    let pool = ExecPool::new(2);
    let mut chain = TiledChain::new("path");
    chain.register_set("cells", n_cells);
    chain.register_set("edges", n_edges);
    chain.register_map(map);
    let u_id = chain.register_dat("u", "cells", 1, u);
    let f_id = chain.register_dat("f", "edges", 1, f);
    let gather = desc(
        "gather",
        "edges",
        n_edges,
        vec![
            ArgInfo::indirect("u", 1, Access::Read, "edge2cell", 0),
            ArgInfo::indirect("u", 1, Access::Read, "edge2cell", 1),
            ArgInfo::direct("f", 1, Access::Write),
        ],
    );
    let scatter = desc(
        "scatter",
        "edges",
        n_edges,
        vec![
            ArgInfo::direct("f", 1, Access::Read),
            ArgInfo::indirect("u", 1, Access::Inc, "edge2cell", 0),
            ArgInfo::indirect("u", 1, Access::Inc, "edge2cell", 1),
        ],
    );
    for _ in 0..steps {
        chain.begin_step();
        chain.record(gather.clone(), move |ctx, e| {
            let u = ctx.dat(u_id);
            let v = u[e] + u[e + 1];
            unsafe { ctx.dat_mut(f_id)[e] = v };
        });
        chain.record(scatter.clone(), move |ctx, e| {
            let v = ctx.dat(f_id)[e];
            let u = unsafe { ctx.dat_mut(u_id) };
            u[e] += v;
            u[e + 1] += v;
        });
    }
    let sched = chain.schedule(tile_elems, block);
    chain.execute(&pool, &sched, 2, 1, 8, None);
}

/// The same computation, straight-line sequential.
fn reference_path(u: &mut [i64], steps: usize) {
    let n_edges = u.len() - 1;
    let mut f = vec![0i64; n_edges];
    for _ in 0..steps {
        for e in 0..n_edges {
            f[e] = u[e] + u[e + 1];
        }
        for e in 0..n_edges {
            u[e] += f[e];
            u[e + 1] += f[e];
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Tiled airfoil ≡ fused-threaded ≤1e-12 and bit-identical to plain
    // sequential state for random meshes × seeds × steps × tile sizes;
    // the history must also be invariant under re-tiling (one big tile).
    #[test]
    fn tiled_airfoil_matches_fused_and_sequential(
        nx in 4usize..12,
        ny in 3usize..8,
        seed in any::<u64>(),
        steps in 1usize..6,
        tile_blocks in 1usize..5,
        bs_sel in 0usize..3,
    ) {
        let block = [16usize, 48, 64][bs_sel];
        let (seq, _) = seq_airfoil(nx, ny, seed, steps);
        let (_, fused_hist, _) = fused_airfoil(nx, ny, seed, steps, block);
        let (sim, hist, _) = tiled_airfoil(nx, ny, seed, steps, tile_blocks * block, block);
        for (i, (&rms, &r)) in hist.iter().zip(&fused_hist).enumerate() {
            prop_assert!(
                (rms - r).abs() <= 1e-12 * (1.0 + r),
                "step {i}: tiled rms {rms} vs fused {r}"
            );
        }
        prop_assert!(sim.q.all_finite());
        prop_assert_eq!(sim.q.max_abs_diff(&seq.q), 0.0, "state must bit-match step_seq");
        // re-tiling must not change a single bit of the history
        let (sim1, hist1, _) = tiled_airfoil(nx, ny, seed, steps, 1_000_000, block);
        prop_assert_eq!(bits(&hist), bits(&hist1), "history must be tiling-invariant");
        prop_assert_eq!(sim1.q.max_abs_diff(&seq.q), 0.0);
    }

    // The same triangle-mesh property on volna, whose reduce-then-consume
    // dt global forces two epochs per recorded step.
    #[test]
    fn tiled_volna_matches_fused_and_sequential(
        nx in 4usize..12,
        ny in 3usize..8,
        seed in any::<u64>(),
        steps in 1usize..6,
        tile_blocks in 1usize..5,
        bs_sel in 0usize..3,
    ) {
        let block = [16usize, 48, 64][bs_sel];
        let (seq, _) = seq_volna(nx, ny, seed, steps);
        let (_, fused_hist, _) = fused_volna(nx, ny, seed, steps, block);
        let (sim, hist, _) = tiled_volna(nx, ny, seed, steps, tile_blocks * block, block);
        for (i, (&dt, &r)) in hist.iter().zip(&fused_hist).enumerate() {
            prop_assert!(
                (dt - r).abs() <= 1e-12 * r,
                "step {i}: tiled dt {dt} vs fused {r}"
            );
        }
        prop_assert!(sim.w.all_finite());
        prop_assert_eq!(sim.w.max_abs_diff(&seq.w), 0.0, "state must bit-match step_seq");
        let (sim1, hist1, _) = tiled_volna(nx, ny, seed, steps, 1_000_000, block);
        prop_assert_eq!(bits(&hist), bits(&hist1), "history must be tiling-invariant");
        prop_assert_eq!(sim1.w.max_abs_diff(&seq.w), 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Integer-data chains are exact in i64: any cone bug — a fringe
    // element missed, executed twice for the owner, or staged from a
    // stale shadow — breaks equality outright.
    #[test]
    fn tiled_integer_chain_is_bit_identical(
        n_cells in 3usize..60,
        steps in 1usize..6,
        tile_elems in 1usize..40,
        block_sel in 0usize..4,
        init in prop::collection::vec(-100i64..100, 60..61),
    ) {
        let block = [1usize, 3, 4, 8][block_sel];
        let map = path_edge2cell(n_cells);
        let mut u: Vec<i64> = init[..n_cells].to_vec();
        let mut f = vec![0i64; n_cells - 1];
        let mut expect = u.clone();
        reference_path(&mut expect, steps);
        run_tiled_path(&map, &mut u, &mut f, steps, tile_elems, block);
        prop_assert_eq!(u, expect, "n_cells={} steps={} tile={} block={}",
            n_cells, steps, tile_elems, block);
    }
}

// ---------------------------------------------------------------------------
// deterministic acceptance pins
// ---------------------------------------------------------------------------

/// The headline acceptance criterion: four recorded steps, tiled vs
/// fused-threaded, on both apps, within 1e-12 — and the tiled reduction
/// *history* bit-identical under the ordered-fold discipline: any tile
/// size and any team size folds the same per-(step, phase, block)
/// partials in the same order, so re-tiling or re-threading the sweep
/// must not change a single bit. (Bit-equality with the fused path
/// itself is not attainable: the fused chain scatters edge increments
/// in plan-color order, perturbing cell state in the last ulp, while
/// tiled execution is bit-identical to plain sequential order.)
#[test]
fn four_step_reduction_histories_match_fused_and_are_config_invariant() {
    const STEPS: usize = 4;
    const BLOCK: usize = 48;
    for (nx, ny) in [(12, 8), (60, 30)] {
        let (fused_sim, fused_hist, _) = fused_airfoil(nx, ny, 0, STEPS, BLOCK);
        let (sim, hist, _) = tiled_airfoil(nx, ny, 0, STEPS, 4 * BLOCK, BLOCK);
        for (i, (&rms, &r)) in hist.iter().zip(&fused_hist).enumerate() {
            assert!(
                (rms - r).abs() <= 1e-12 * (1.0 + r),
                "airfoil {nx}x{ny} step {i}: tiled rms {rms} vs fused {r}"
            );
        }
        assert!(
            sim.q.max_abs_diff(&fused_sim.q) <= 1e-12,
            "airfoil {nx}x{ny} vs fused"
        );
        let (seq, _) = seq_airfoil(nx, ny, 0, STEPS);
        assert_eq!(sim.q.max_abs_diff(&seq.q), 0.0, "airfoil {nx}x{ny} state");
        // ordered-fold discipline: identical bits for every re-tiling /
        // re-threading of the same four recorded steps
        for (tile, team) in [
            (BLOCK, TEAM),
            (7 * BLOCK, TEAM),
            (4 * BLOCK, 1),
            (4 * BLOCK, 7),
        ] {
            let (_, h, _) = tiled_airfoil_team(nx, ny, 0, STEPS, tile, BLOCK, team);
            assert_eq!(bits(&h), bits(&hist), "airfoil tile={tile} team={team}");
        }

        let (fused_sim, fused_hist, _) = fused_volna(nx, ny, 0, STEPS, BLOCK);
        let (sim, hist, _) = tiled_volna(nx, ny, 0, STEPS, 4 * BLOCK, BLOCK);
        for (i, (&dt, &r)) in hist.iter().zip(&fused_hist).enumerate() {
            assert!(
                (dt - r).abs() <= 1e-12 * r,
                "volna {nx}x{ny} step {i}: tiled dt {dt} vs fused {r}"
            );
        }
        assert!(
            sim.w.max_abs_diff(&fused_sim.w) <= 1e-12,
            "volna {nx}x{ny} vs fused"
        );
        let (seq, _) = seq_volna(nx, ny, 0, STEPS);
        assert_eq!(sim.w.max_abs_diff(&seq.w), 0.0, "volna {nx}x{ny} state");
        for (tile, team) in [
            (BLOCK, TEAM),
            (7 * BLOCK, TEAM),
            (4 * BLOCK, 1),
            (4 * BLOCK, 7),
        ] {
            let (_, h, _) = tiled_volna_team(nx, ny, 0, STEPS, tile, BLOCK, team);
            assert_eq!(bits(&h), bits(&hist), "volna tile={tile} team={team}");
        }
    }
}

/// Degenerate tilings collapse to paths that already exist and must
/// keep the exact same answers: one tile spanning the mesh (no fringe at
/// all), a tile of a single block (maximal fringe), and N = 1 (tiling
/// reduces to within-step fusion).
#[test]
fn degenerate_tilings_still_match() {
    const BLOCK: usize = 48;
    let (nx, ny) = (12, 8);
    for steps in [1usize, 3] {
        let (seq_a, _) = seq_airfoil(nx, ny, 0, steps);
        let (seq_v, _) = seq_volna(nx, ny, 0, steps);
        let (_, fused_a, _) = fused_airfoil(nx, ny, 0, steps, BLOCK);
        let (_, fused_v, _) = fused_volna(nx, ny, 0, steps, BLOCK);
        for tile_cells in [BLOCK, 1_000_000] {
            let (sim, hist, _) = tiled_airfoil(nx, ny, 0, steps, tile_cells, BLOCK);
            for (i, (&rms, &r)) in hist.iter().zip(&fused_a).enumerate() {
                assert!(
                    (rms - r).abs() <= 1e-12 * (1.0 + r),
                    "airfoil tile={tile_cells} steps={steps} step {i}: {rms} vs {r}"
                );
            }
            assert_eq!(sim.q.max_abs_diff(&seq_a.q), 0.0);
            let (sim, hist, _) = tiled_volna(nx, ny, 0, steps, tile_cells, BLOCK);
            for (i, (&dt, &r)) in hist.iter().zip(&fused_v).enumerate() {
                assert!(
                    (dt - r).abs() <= 1e-12 * r,
                    "volna tile={tile_cells} steps={steps} step {i}: {dt} vs {r}"
                );
            }
            assert_eq!(sim.w.max_abs_diff(&seq_v.w), 0.0);
        }
    }
}

/// The dispatch-round win that motivates tiling: sweeping tiles through
/// all N steps issues two pool rounds per epoch, strictly fewer than N
/// untiled fused steps issue — airfoil (no in-chain global consumption)
/// runs N steps in a single epoch.
#[test]
fn tiled_issues_fewer_rounds_than_n_fused_steps() {
    const STEPS: usize = 4;
    const BLOCK: usize = 48;
    let (nx, ny) = (12, 8);
    let (_, _, fused_rounds) = fused_airfoil(nx, ny, 0, STEPS, BLOCK);
    let (_, _, tiled_rounds) = tiled_airfoil(nx, ny, 0, STEPS, 4 * BLOCK, BLOCK);
    assert_eq!(tiled_rounds, 2, "airfoil: one epoch, compute + write-back");
    assert!(
        tiled_rounds < fused_rounds,
        "airfoil: tiled {tiled_rounds} rounds vs {STEPS}-step fused {fused_rounds}"
    );
    let (_, _, fused_rounds) = fused_volna(nx, ny, 0, STEPS, BLOCK);
    let (_, _, tiled_rounds) = tiled_volna(nx, ny, 0, STEPS, 4 * BLOCK, BLOCK);
    assert_eq!(
        tiled_rounds,
        4 * STEPS as u64,
        "volna: two epochs per step, two rounds per epoch"
    );
    assert!(
        tiled_rounds < fused_rounds,
        "volna: tiled {tiled_rounds} rounds vs {STEPS}-step fused {fused_rounds}"
    );
}
