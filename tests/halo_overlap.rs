//! Distributed fused execution with halo/compute overlap: edge cases and
//! acceptance bounds.
//!
//! * `mpi_fused` / `mpi_fused_simd` on 2–8 ranks match the sequential
//!   reference within 1e-12 on both applications (reductions are
//!   rank-ordered, hence bit-reproducible run to run),
//! * overlap and blocking exchange policies are **bit-identical** (the
//!   split schedule computes in the same order; only the exchange
//!   placement moves),
//! * degenerate partitions work: a single rank (empty halos, no boundary
//!   blocks at all) and ragged partitions where one rank owns a sliver
//!   that is pure fringe (zero interior edge blocks).

use ump::lazy::{ExchangePolicy, Shape};
use ump_apps::{airfoil, volna};
use ump_part::Partition;

const BLOCK: usize = 48;
const TEAM: usize = 2;

fn airfoil_reference(nx: usize, ny: usize, iters: usize) -> (airfoil::Airfoil<f64>, Vec<f64>) {
    let mut sim = airfoil::Airfoil::<f64>::new(nx, ny);
    let hist = (0..iters)
        .map(|_| airfoil::drivers::step_seq(&mut sim, None))
        .collect();
    (sim, hist)
}

fn volna_reference(nx: usize, ny: usize, steps: usize) -> (volna::Volna<f64>, Vec<f64>) {
    let mut sim = volna::Volna::<f64>::new(nx, ny);
    let hist = (0..steps)
        .map(|_| volna::drivers::step_seq(&mut sim, None))
        .collect();
    (sim, hist)
}

/// The acceptance sweep: 2–8 ranks, threaded and SIMD shapes, both
/// applications, vs the sequential reference.
#[test]
fn mpi_fused_matches_seq_on_2_to_8_ranks() {
    let iters = 5;
    let (aref, ahist) = airfoil_reference(40, 20, iters);
    let (vref, vhist) = volna_reference(16, 12, iters);
    for ranks in [2usize, 3, 5, 8] {
        for simd in [false, true] {
            let shape = if simd {
                Shape::Simd { lanes: 4 }
            } else {
                Shape::Threaded
            };
            let (q, hist) = airfoil::mpi::run_mpi_fused::<f64, 4>(
                &aref.case,
                ranks,
                TEAM,
                BLOCK,
                iters,
                shape,
                ExchangePolicy::Overlap,
            );
            let d = q.max_abs_diff(&aref.q);
            assert!(d <= 1e-12, "airfoil {ranks} ranks simd={simd}: |Δq| {d:e}");
            for (i, (&rms, &r)) in hist.iter().zip(&ahist).enumerate() {
                assert!(
                    (rms - r).abs() <= 1e-12 * (1.0 + r),
                    "airfoil {ranks} ranks simd={simd} iter {i}: {rms} vs {r}"
                );
            }

            let (w, dts) = volna::mpi::run_mpi_fused::<f64, 4>(
                &vref.case,
                ranks,
                TEAM,
                BLOCK,
                iters,
                shape,
                ExchangePolicy::Overlap,
            );
            let d = w.max_abs_diff(&vref.w);
            assert!(d <= 1e-12, "volna {ranks} ranks simd={simd}: |Δw| {d:e}");
            for (i, (&dt, &r)) in dts.iter().zip(&vhist).enumerate() {
                assert!(
                    (dt - r).abs() <= 1e-12 * r,
                    "volna {ranks} ranks simd={simd} step {i}: Δt {dt} vs {r}"
                );
            }
        }
    }
}

/// Overlap and blocking exchange policies compute in the same order, so
/// their results must agree to the bit — on every dat component and
/// every reduction of the run.
#[test]
fn overlap_and_blocking_are_bit_identical() {
    let iters = 4;
    let acase = airfoil::Airfoil::<f64>::new(30, 18).case;
    let (q_o, h_o) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &acase,
        3,
        TEAM,
        BLOCK,
        iters,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );
    let (q_b, h_b) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &acase,
        3,
        TEAM,
        BLOCK,
        iters,
        Shape::Threaded,
        ExchangePolicy::Blocking,
    );
    assert!(
        q_o.data
            .iter()
            .zip(&q_b.data)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "airfoil overlap vs blocking diverged"
    );
    assert_eq!(h_o, h_b, "airfoil rms histories must be bit-equal");

    let vcase = volna::Volna::<f64>::new(14, 10).case;
    let (w_o, d_o) = volna::mpi::run_mpi_fused::<f64, 4>(
        &vcase,
        4,
        TEAM,
        BLOCK,
        iters,
        Shape::Simd { lanes: 4 },
        ExchangePolicy::Overlap,
    );
    let (w_b, d_b) = volna::mpi::run_mpi_fused::<f64, 4>(
        &vcase,
        4,
        TEAM,
        BLOCK,
        iters,
        Shape::Simd { lanes: 4 },
        ExchangePolicy::Blocking,
    );
    assert!(
        w_o.data
            .iter()
            .zip(&w_b.data)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "volna overlap vs blocking diverged"
    );
    assert_eq!(d_o, d_b, "volna Δt histories must be bit-equal");
}

/// A single rank has empty exchange plans and no boundary blocks at all:
/// the "distributed" chain degrades to the shared-memory fused step.
#[test]
fn single_rank_runs_with_empty_halos() {
    let iters = 4;
    let (aref, _) = airfoil_reference(24, 12, iters);
    let (q, _) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &aref.case,
        1,
        TEAM,
        BLOCK,
        iters,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );
    let d = q.max_abs_diff(&aref.q);
    assert!(d <= 1e-12, "single-rank airfoil: |Δq| {d:e}");

    let (vref, _) = volna_reference(10, 8, iters);
    let (w, _) = volna::mpi::run_mpi_fused::<f64, 4>(
        &vref.case,
        1,
        TEAM,
        BLOCK,
        iters,
        Shape::Simd { lanes: 4 },
        ExchangePolicy::Overlap,
    );
    let d = w.max_abs_diff(&vref.w);
    assert!(d <= 1e-12, "single-rank volna: |Δw| {d:e}");
}

/// Ragged ownership: rank 1 owns a single cell column — at BLOCK = 48
/// its every edge block is fringe (zero interior blocks), while rank 0
/// owns almost everything. The overlap schedule must degrade gracefully
/// on both extremes and still match the reference.
#[test]
fn ragged_partition_with_a_pure_fringe_rank() {
    let iters = 4;
    let (nx, ny) = (36usize, 15usize);
    let (aref, _) = airfoil_reference(nx, ny, iters);
    // quad_channel cells are laid out column-major-ish by generator id:
    // give rank 1 the last column of cells, rank 0 the rest
    let part: Vec<u32> = (0..nx * ny)
        .map(|c| u32::from(c >= (nx - 1) * ny))
        .collect();
    let partition = Partition { part, n_parts: 2 };
    partition.validate().unwrap();
    for policy in [ExchangePolicy::Overlap, ExchangePolicy::Blocking] {
        let (q, _) = airfoil::mpi::run_mpi_fused_with_partition::<f64, 4>(
            &aref.case,
            &partition,
            TEAM,
            BLOCK,
            iters,
            Shape::Threaded,
            policy,
        );
        let d = q.max_abs_diff(&aref.q);
        assert!(d <= 1e-12, "ragged airfoil ({policy:?}): |Δq| {d:e}");
    }

    // volna on a three-way ragged split: two slivers and a bulk rank
    let (vx, vy) = (14usize, 10usize);
    let (vref, _) = volna_reference(vx, vy, iters);
    let n_cells = vref.case.mesh.n_cells();
    let part: Vec<u32> = (0..n_cells)
        .map(|c| {
            if c < 8 {
                0
            } else if c >= n_cells - 8 {
                2
            } else {
                1
            }
        })
        .collect();
    let partition = Partition { part, n_parts: 3 };
    partition.validate().unwrap();
    let (w, _) = volna::mpi::run_mpi_fused_with_partition::<f64, 4>(
        &vref.case,
        &partition,
        TEAM,
        BLOCK,
        iters,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );
    let d = w.max_abs_diff(&vref.w);
    assert!(d <= 1e-12, "ragged volna: |Δw| {d:e}");
}

/// The README's backend table is generated from the registry — every
/// registered name appears in it (including the distributed rows), so
/// the docs can never drift from `Backend::all()`.
#[test]
fn readme_backend_table_covers_the_registry() {
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md at repo root");
    for b in ump::Backend::all() {
        let name = b.name();
        assert!(
            readme.contains(&format!("`{name}`")),
            "README backend table is missing `{name}` — regenerate it from Backend::all()"
        );
    }
}
