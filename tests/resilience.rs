//! Fault-tolerant distributed execution: the golden guarantee.
//!
//! Under any injected [`FaultPlan`] — a rank killed at a chosen step, a
//! halo packet dropped, delayed past the deadline, or duplicated — the
//! recovered `mpi_fused` run must produce reductions and final state
//! **bit-identical** to the fault-free run, and must finish within a
//! bounded wall time (typed exchange timeouts + coordinated rollback,
//! never a hang). The sweep covers kill points × rank counts × both
//! applications, plus the threaded and SIMD shapes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ump::fault::FaultPlan;
use ump::lazy::{ExchangePolicy, Shape};
use ump_apps::{airfoil, volna};

const BLOCK: usize = 48;
const TEAM: usize = 2;
const IO_TIMEOUT: Duration = Duration::from_millis(300);

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The checkpoint a kill at step `k` rolls back to, at cadence `every`:
/// the last cadence boundary passed *healthy* (the boundary at `k`
/// itself is never reached — the health vote fires first).
fn expected_ckpt(k: usize, every: usize) -> usize {
    (k.saturating_sub(1) / every) * every
}

#[test]
fn resilient_run_without_faults_is_plain_run() {
    let acase = airfoil::Airfoil::<f64>::new(24, 12).case;
    let (q0, h0) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &acase,
        2,
        TEAM,
        BLOCK,
        6,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );
    let (q1, h1, report) = airfoil::mpi::run_mpi_fused_resilient::<f64, 4>(
        &acase,
        2,
        TEAM,
        BLOCK,
        6,
        Shape::Threaded,
        ExchangePolicy::Overlap,
        2,
        None,
        IO_TIMEOUT,
    );
    assert!(bits_eq(&q0.data, &q1.data), "state diverged with no faults");
    assert!(bits_eq(&h0, &h1), "history diverged with no faults");
    assert_eq!(report.recoveries, 0);
    assert_eq!(report.replayed_steps, 0);
    assert_eq!(report.exchange_timeouts, 0);
}

/// The kill sweep: rank deaths at early/middle/late steps, at 2 and 4
/// ranks, recover bit-identically on Airfoil.
#[test]
fn airfoil_rank_kill_recovers_bit_identical() {
    let iters = 9;
    let every = 3;
    let case = airfoil::Airfoil::<f64>::new(24, 12).case;
    for ranks in [2usize, 4] {
        let (q0, h0) = airfoil::mpi::run_mpi_fused::<f64, 4>(
            &case,
            ranks,
            TEAM,
            BLOCK,
            iters,
            Shape::Threaded,
            ExchangePolicy::Overlap,
        );
        for kill_step in [0usize, 1, 4, 8] {
            let victim = ranks - 1;
            let plan = FaultPlan::new().with_kill_rank(victim, kill_step as u64);
            let inj = Arc::new(plan.injector());
            let (q, h, report) = airfoil::mpi::run_mpi_fused_resilient::<f64, 4>(
                &case,
                ranks,
                TEAM,
                BLOCK,
                iters,
                Shape::Threaded,
                ExchangePolicy::Overlap,
                every,
                Some(inj.clone()),
                IO_TIMEOUT,
            );
            let tag = format!("ranks={ranks} kill rank {victim} at step {kill_step}");
            assert_eq!(inj.injected(), 1, "{tag}: fault did not fire");
            assert_eq!(report.recoveries, 1, "{tag}: recoveries");
            assert_eq!(
                report.replayed_steps,
                kill_step - expected_ckpt(kill_step, every),
                "{tag}: replayed steps"
            );
            assert!(bits_eq(&q0.data, &q.data), "{tag}: final state diverged");
            assert!(bits_eq(&h0, &h), "{tag}: reduction history diverged");
        }
    }
}

/// Same sweep on Volna (global-CFL reductions included), with a SIMD
/// shape and odd rank counts in the mix.
#[test]
fn volna_rank_kill_recovers_bit_identical() {
    let steps = 7;
    let every = 2;
    let case = volna::Volna::<f64>::new(16, 12).case;
    for (ranks, shape) in [(2usize, Shape::Threaded), (3, Shape::Simd { lanes: 4 })] {
        let (w0, h0) = volna::mpi::run_mpi_fused::<f64, 4>(
            &case,
            ranks,
            TEAM,
            BLOCK,
            steps,
            shape,
            ExchangePolicy::Overlap,
        );
        for kill_step in [2usize, 5] {
            let plan = FaultPlan::new().with_kill_rank(ranks - 1, kill_step as u64);
            let inj = Arc::new(plan.injector());
            let (w, h, report) = volna::mpi::run_mpi_fused_resilient::<f64, 4>(
                &case,
                ranks,
                TEAM,
                BLOCK,
                steps,
                shape,
                ExchangePolicy::Overlap,
                every,
                Some(inj),
                IO_TIMEOUT,
            );
            let tag = format!("ranks={ranks} kill at step {kill_step}");
            assert_eq!(report.recoveries, 1, "{tag}");
            assert!(bits_eq(&w0.data, &w.data), "{tag}: final state diverged");
            assert!(bits_eq(&h0, &h), "{tag}: Δt history diverged");
        }
    }
}

/// A dropped halo packet surfaces as a typed exchange timeout within the
/// deadline — no hang — and the rollback restores bit-identity. The
/// per-(from,to) ordinal clock counts only halo packets (collectives use
/// shared slots), so Airfoil sends 4/step per neighbor direction:
/// q, adt (phase 1), q, adt (phase 2).
#[test]
fn airfoil_dropped_halo_packet_rolls_back_without_hanging() {
    let iters = 6;
    let case = airfoil::Airfoil::<f64>::new(24, 12).case;
    let (q0, h0) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &case,
        2,
        TEAM,
        BLOCK,
        iters,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );
    // nth 1 = step-0 phase-1 q packet; 2 = its adt; 4 = phase-2 adt;
    // 7 = step-1 phase-2 q — hitting both dats and both phases
    for nth in [1u64, 2, 4, 7] {
        let plan = FaultPlan::new().with_drop_message(0, 1, nth);
        let inj = Arc::new(plan.injector());
        let t0 = Instant::now();
        let (q, h, report) = airfoil::mpi::run_mpi_fused_resilient::<f64, 4>(
            &case,
            2,
            TEAM,
            BLOCK,
            iters,
            Shape::Threaded,
            ExchangePolicy::Overlap,
            2,
            Some(inj.clone()),
            IO_TIMEOUT,
        );
        let elapsed = t0.elapsed();
        assert_eq!(inj.injected(), 1, "drop nth={nth} did not fire");
        assert_eq!(report.recoveries, 1, "drop nth={nth}: recoveries");
        assert!(
            report.exchange_timeouts >= 1,
            "drop nth={nth}: no typed timeout latched"
        );
        assert!(bits_eq(&q0.data, &q.data), "drop nth={nth}: state diverged");
        assert!(bits_eq(&h0, &h), "drop nth={nth}: history diverged");
        // no-hang bound: one guard deadline plus the (small) run itself,
        // with head-room for a loaded CI box
        assert!(
            elapsed < Duration::from_secs(30),
            "drop nth={nth}: took {elapsed:?}"
        );
    }
}

/// A packet delayed past the exchange deadline behaves like a drop (the
/// stale packet is drained before the replay); a duplicated packet is
/// absorbed by receiver-side dedup with no recovery at all.
#[test]
fn volna_delayed_and_duplicated_packets() {
    let steps = 5;
    let case = volna::Volna::<f64>::new(16, 12).case;
    let (w0, h0) = volna::mpi::run_mpi_fused::<f64, 4>(
        &case,
        2,
        TEAM,
        BLOCK,
        steps,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );
    // Volna sends 2 halo packets per step per direction: w, then w1.
    let delayed = FaultPlan::new().with_delay_message(0, 1, 2, 2_000);
    let inj = Arc::new(delayed.injector());
    let (w, h, report) = volna::mpi::run_mpi_fused_resilient::<f64, 4>(
        &case,
        2,
        TEAM,
        BLOCK,
        steps,
        Shape::Threaded,
        ExchangePolicy::Overlap,
        2,
        Some(inj),
        IO_TIMEOUT,
    );
    assert_eq!(report.recoveries, 1, "delay: recoveries");
    assert!(report.exchange_timeouts >= 1, "delay: no timeout latched");
    assert!(bits_eq(&w0.data, &w.data), "delay: state diverged");
    assert!(bits_eq(&h0, &h), "delay: history diverged");

    let duplicated = FaultPlan::new().with_duplicate_message(0, 1, 1);
    let inj = Arc::new(duplicated.injector());
    let (w, h, report) = volna::mpi::run_mpi_fused_resilient::<f64, 4>(
        &case,
        2,
        TEAM,
        BLOCK,
        steps,
        Shape::Threaded,
        ExchangePolicy::Overlap,
        2,
        Some(inj.clone()),
        IO_TIMEOUT,
    );
    assert_eq!(inj.injected(), 1, "duplicate did not fire");
    assert_eq!(report.recoveries, 0, "duplicate: spurious recovery");
    assert!(bits_eq(&w0.data, &w.data), "duplicate: state diverged");
    assert!(bits_eq(&h0, &h), "duplicate: history diverged");
}

/// Two independent faults in one plan — a rank kill and a later packet
/// drop — are both recovered; determinism survives composition.
#[test]
fn composed_kill_and_drop_recover_bit_identical() {
    let iters = 8;
    let case = airfoil::Airfoil::<f64>::new(24, 12).case;
    let (q0, h0) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &case,
        2,
        TEAM,
        BLOCK,
        iters,
        Shape::Simd { lanes: 4 },
        ExchangePolicy::Overlap,
    );
    // the drop ordinal lands mid-run wherever the (monotonic) packet
    // clock reaches 18 — which packet dies is irrelevant to recovery
    let plan = FaultPlan::new()
        .with_kill_rank(1, 2)
        .with_drop_message(1, 0, 18);
    let inj = Arc::new(plan.injector());
    let (q, h, report) = airfoil::mpi::run_mpi_fused_resilient::<f64, 4>(
        &case,
        2,
        TEAM,
        BLOCK,
        iters,
        Shape::Simd { lanes: 4 },
        ExchangePolicy::Overlap,
        3,
        Some(inj.clone()),
        IO_TIMEOUT,
    );
    assert_eq!(
        inj.injected(),
        2,
        "both faults should fire: {:?}",
        inj.fired()
    );
    assert_eq!(report.recoveries, 2, "one rollback per fault");
    assert!(bits_eq(&q0.data, &q.data), "composed: state diverged");
    assert!(bits_eq(&h0, &h), "composed: history diverged");
}

/// The same seed-free plan injected twice produces the same fault
/// narrative and the same recovery counts — schedule determinism.
#[test]
fn fault_schedule_is_deterministic_across_runs() {
    let case = volna::Volna::<f64>::new(16, 12).case;
    let mut fired = Vec::new();
    let mut reports = Vec::new();
    for _ in 0..2 {
        let plan = FaultPlan::new()
            .with_kill_rank(0, 3)
            .with_drop_message(1, 0, 5);
        let inj = Arc::new(plan.injector());
        let (w, _, report) = volna::mpi::run_mpi_fused_resilient::<f64, 4>(
            &case,
            2,
            TEAM,
            BLOCK,
            6,
            Shape::Threaded,
            ExchangePolicy::Overlap,
            2,
            Some(inj.clone()),
            IO_TIMEOUT,
        );
        fired.push(inj.fired());
        reports.push((report, w.data));
    }
    assert_eq!(fired[0], fired[1], "fault narratives diverged");
    assert_eq!(reports[0].0, reports[1].0, "reports diverged");
    assert!(
        bits_eq(&reports[0].1, &reports[1].1),
        "recovered states diverged"
    );
}
