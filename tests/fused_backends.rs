//! Integration: the `ump_lazy` fused backend must compute the same
//! physics as the sequential reference on both applications, in both
//! execution shapes, while issuing strictly fewer `ExecPool` dispatch
//! rounds than the unfused threaded drivers — the two claims the fusion
//! runtime exists for.

use ump_apps::{airfoil, volna};
use ump_core::{ExecPool, PlanCache, Recorder};
use ump_lazy::Shape;

const NX: usize = 24;
const NY: usize = 16;
const ITERS: usize = 5;

const SIMT: Shape = Shape::Simt {
    width: 8,
    sched_overhead_ns: 0,
};

#[test]
fn fused_airfoil_matches_sequential_within_1e12() {
    let mut reference = airfoil::Airfoil::<f64>::new(NX, NY);
    let ref_hist: Vec<f64> = (0..ITERS)
        .map(|_| airfoil::drivers::step_seq(&mut reference, None))
        .collect();

    for shape in [Shape::Threaded, SIMT] {
        let pool = ExecPool::new(4);
        let cache = PlanCache::new();
        let mut sim = airfoil::Airfoil::<f64>::new(NX, NY);
        for (i, &r) in ref_hist.iter().enumerate() {
            let rms = airfoil::drivers::step_fused_on(&pool, &mut sim, &cache, shape, 0, 32, None);
            assert!(
                (rms - r).abs() < 1e-12 * (1.0 + r),
                "{shape:?} iter {i}: rms {rms} vs {r}"
            );
        }
        let d = sim.q.max_abs_diff(&reference.q);
        assert!(d <= 1e-12, "{shape:?}: max |Δq| = {d:e} > 1e-12");
    }
}

#[test]
fn fused_volna_matches_sequential_within_1e12() {
    let mut reference = volna::Volna::<f64>::new(NX, NY);
    let ref_hist: Vec<f64> = (0..ITERS)
        .map(|_| volna::drivers::step_seq(&mut reference, None))
        .collect();

    for shape in [Shape::Threaded, SIMT] {
        let pool = ExecPool::new(4);
        let cache = PlanCache::new();
        let mut sim = volna::Volna::<f64>::new(NX, NY);
        for (i, &r) in ref_hist.iter().enumerate() {
            let dt = volna::drivers::step_fused_on(&pool, &mut sim, &cache, shape, 0, 32, None);
            // the Δt reduction is an exact min of its inputs; the inputs
            // themselves carry ULP-level reassociation differences
            assert!(
                (dt - r).abs() <= 1e-12 * r,
                "{shape:?} iter {i}: {dt} vs {r}"
            );
        }
        let d = sim.w.max_abs_diff(&reference.w);
        assert!(d <= 1e-12, "{shape:?}: max |Δw| = {d:e} > 1e-12");
        assert!(sim.w.all_finite());
    }
}

/// The headline claim: a fused Airfoil timestep issues strictly fewer
/// pool dispatch rounds than `step_threaded`, and the instrumentation
/// counters agree with the pool's own round counter.
#[test]
fn fused_airfoil_issues_strictly_fewer_dispatch_rounds() {
    let pool = ExecPool::new(4);
    let cache = PlanCache::new();
    let block_size = 32;

    let mut sim = airfoil::Airfoil::<f64>::new(NX, NY);
    // warm the plan cache so both measurements dispatch identically
    airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, block_size, None);
    airfoil::drivers::step_fused_on(
        &pool,
        &mut sim,
        &cache,
        Shape::Threaded,
        0,
        block_size,
        None,
    );

    let r0 = pool.dispatch_rounds();
    airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, block_size, None);
    let threaded_rounds = pool.dispatch_rounds() - r0;

    let rec = Recorder::new();
    let r1 = pool.dispatch_rounds();
    airfoil::drivers::step_fused_on(
        &pool,
        &mut sim,
        &cache,
        Shape::Threaded,
        0,
        block_size,
        Some(&rec),
    );
    let fused_rounds = pool.dispatch_rounds() - r1;

    assert!(
        fused_rounds < threaded_rounds,
        "fused step must issue strictly fewer rounds: fused {fused_rounds} vs threaded {threaded_rounds}"
    );

    let stats = rec.fusion("airfoil_step").expect("chain stats recorded");
    assert_eq!(stats.fused_rounds as u64, fused_rounds, "counter mismatch");
    assert_eq!(
        stats.unfused_rounds as u64, threaded_rounds,
        "baseline mismatch"
    );
    assert!(stats.rounds_saved() >= 2, "airfoil fuses two cell pairs");
    assert!(
        stats.bytes_saved > 0.0,
        "fusion must save re-streamed bytes"
    );
    assert_eq!(stats.loops, 9);
}

/// Same for Volna, whose edge-loop triple fuses: three rounds saved
/// (compute_flux+numerical_flux+space_disc collapse to one dispatch in
/// phase 0, compute_flux+space_disc in phase 1).
#[test]
fn fused_volna_issues_strictly_fewer_dispatch_rounds() {
    let pool = ExecPool::new(4);
    let cache = PlanCache::new();
    let block_size = 32;

    let mut sim = volna::Volna::<f64>::new(NX, NY);
    volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, block_size, None);
    volna::drivers::step_fused_on(
        &pool,
        &mut sim,
        &cache,
        Shape::Threaded,
        0,
        block_size,
        None,
    );

    let r0 = pool.dispatch_rounds();
    volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, block_size, None);
    let threaded_rounds = pool.dispatch_rounds() - r0;

    let rec = Recorder::new();
    let r1 = pool.dispatch_rounds();
    volna::drivers::step_fused_on(
        &pool,
        &mut sim,
        &cache,
        Shape::Threaded,
        0,
        block_size,
        Some(&rec),
    );
    let fused_rounds = pool.dispatch_rounds() - r1;

    assert!(
        fused_rounds < threaded_rounds,
        "fused {fused_rounds} vs threaded {threaded_rounds}"
    );
    let stats = rec.fusion("volna_step").unwrap();
    assert_eq!(stats.rounds_saved(), 3, "cf+nf+sd and cf+sd fusions");
}

/// The SIMT-fused path must feed the same `Recorder` fusion counters as
/// the threaded-fused path: per-chain rounds saved, a fused-rounds count
/// that agrees with the pool's own dispatch counter, and a non-zero
/// bytes-not-re-streamed estimate. (Before this test the SIMT shape's
/// stats were produced but never asserted anywhere.)
#[test]
fn simt_fused_records_fusion_stats_matching_pool_counter() {
    let pool = ExecPool::new(4);
    let cache = PlanCache::new();

    // airfoil
    let rec = Recorder::new();
    let mut sim = airfoil::Airfoil::<f64>::new(NX, NY);
    let r0 = pool.dispatch_rounds();
    airfoil::drivers::step_fused_on(&pool, &mut sim, &cache, SIMT, 0, 32, Some(&rec));
    let simt_rounds = pool.dispatch_rounds() - r0;
    let stats = rec.fusion("airfoil_step").expect("SIMT-fused chain stats");
    assert_eq!(stats.fused_rounds as u64, simt_rounds, "counter mismatch");
    assert!(stats.rounds_saved() >= 2, "airfoil fuses two cell pairs");
    assert!(stats.bytes_saved > 0.0);
    assert_eq!(stats.loops, 9);

    // volna: the edge-triple + edge-pair fusions save 3 rounds under
    // SIMT exactly as under threading (same group plans)
    let rec = Recorder::new();
    let mut sim = volna::Volna::<f64>::new(NX, NY);
    let r0 = pool.dispatch_rounds();
    volna::drivers::step_fused_on(&pool, &mut sim, &cache, SIMT, 0, 32, Some(&rec));
    let simt_rounds = pool.dispatch_rounds() - r0;
    let stats = rec.fusion("volna_step").expect("SIMT-fused chain stats");
    assert_eq!(stats.fused_rounds as u64, simt_rounds, "counter mismatch");
    assert_eq!(stats.rounds_saved(), 3, "cf+nf+sd and cf+sd fusions");
    assert!(stats.bytes_saved > 0.0);
}

/// The fused-SIMD backend: matches the sequential reference at L = 4
/// and L = 8 on both apps, records the same fusion counters (it shares
/// the fused plans), and issues no more pool rounds per step than the
/// fused threaded shape.
#[test]
fn fused_simd_matches_sequential_and_saves_the_same_rounds() {
    let mut airfoil_ref = airfoil::Airfoil::<f64>::new(NX, NY);
    let air_hist: Vec<f64> = (0..ITERS)
        .map(|_| airfoil::drivers::step_seq(&mut airfoil_ref, None))
        .collect();
    let mut volna_ref = volna::Volna::<f64>::new(NX, NY);
    let volna_hist: Vec<f64> = (0..ITERS)
        .map(|_| volna::drivers::step_seq(&mut volna_ref, None))
        .collect();

    let pool = ExecPool::new(4);
    let cache = PlanCache::new();

    // baseline: fused threaded rounds per step (plans warmed first)
    let mut sim = airfoil::Airfoil::<f64>::new(NX, NY);
    airfoil::drivers::step_fused_on(&pool, &mut sim, &cache, Shape::Threaded, 0, 32, None);
    let r0 = pool.dispatch_rounds();
    airfoil::drivers::step_fused_on(&pool, &mut sim, &cache, Shape::Threaded, 0, 32, None);
    let fused_threaded_rounds = pool.dispatch_rounds() - r0;

    fn check_airfoil<const L: usize>(
        pool: &ExecPool,
        cache: &PlanCache,
        reference: &airfoil::Airfoil<f64>,
        hist: &[f64],
        fused_threaded_rounds: u64,
    ) {
        let rec = Recorder::new();
        let mut sim = airfoil::Airfoil::<f64>::new(NX, NY);
        let r0 = pool.dispatch_rounds();
        for (i, &r) in hist.iter().enumerate() {
            let rms = airfoil::drivers::step_fused_simd_on::<f64, L>(
                pool,
                &mut sim,
                cache,
                0,
                32,
                Some(&rec),
            );
            assert!(
                (rms - r).abs() < 1e-12 * (1.0 + r),
                "L={L} iter {i}: rms {rms} vs {r}"
            );
        }
        let rounds_per_step = (pool.dispatch_rounds() - r0) / hist.len() as u64;
        let d = sim.q.max_abs_diff(&reference.q);
        assert!(d <= 1e-12, "L={L}: max |Δq| = {d:e}");
        assert!(
            rounds_per_step <= fused_threaded_rounds,
            "L={L}: fused-SIMD issued {rounds_per_step} rounds/step vs fused-threaded {fused_threaded_rounds}"
        );
        let stats = rec.fusion("airfoil_step").expect("fused-SIMD chain stats");
        assert_eq!(stats.executions, hist.len());
        assert_eq!(
            stats.fused_rounds as u64,
            rounds_per_step * hist.len() as u64,
            "L={L}: recorder disagrees with pool counter"
        );
        assert!(stats.rounds_saved() >= 2 * hist.len());
        assert!(stats.bytes_saved > 0.0);
    }
    check_airfoil::<4>(
        &pool,
        &cache,
        &airfoil_ref,
        &air_hist,
        fused_threaded_rounds,
    );
    check_airfoil::<8>(
        &pool,
        &cache,
        &airfoil_ref,
        &air_hist,
        fused_threaded_rounds,
    );

    // volna at both widths
    fn check_volna<const L: usize>(
        pool: &ExecPool,
        cache: &PlanCache,
        reference: &volna::Volna<f64>,
        hist: &[f64],
    ) {
        let rec = Recorder::new();
        let mut sim = volna::Volna::<f64>::new(NX, NY);
        for (i, &r) in hist.iter().enumerate() {
            let dt = volna::drivers::step_fused_simd_on::<f64, L>(
                pool,
                &mut sim,
                cache,
                0,
                32,
                Some(&rec),
            );
            assert!((dt - r).abs() <= 1e-12 * r, "L={L} iter {i}: {dt} vs {r}");
        }
        let d = sim.w.max_abs_diff(&reference.w);
        assert!(d <= 1e-12, "L={L}: max |Δw| = {d:e}");
        let stats = rec.fusion("volna_step").expect("fused-SIMD chain stats");
        assert_eq!(stats.rounds_saved(), 3 * hist.len());
    }
    check_volna::<4>(&pool, &cache, &volna_ref, &volna_hist);
    check_volna::<8>(&pool, &cache, &volna_ref, &volna_hist);
}

/// Fused execution under an explicit small team and tight block size
/// still matches — exercises multi-color fused dispatch heavily.
#[test]
fn fused_is_robust_across_block_sizes_and_teams() {
    let mut reference = airfoil::Airfoil::<f64>::new(NX, NY);
    for _ in 0..3 {
        airfoil::drivers::step_seq(&mut reference, None);
    }
    for (team, bs) in [(1usize, 16usize), (2, 64), (3, 1024)] {
        let pool = ExecPool::new(team);
        let cache = PlanCache::new();
        let mut sim = airfoil::Airfoil::<f64>::new(NX, NY);
        for _ in 0..3 {
            airfoil::drivers::step_fused_on(&pool, &mut sim, &cache, Shape::Threaded, 0, bs, None);
        }
        let d = sim.q.max_abs_diff(&reference.q);
        assert!(d <= 1e-12, "team {team} block {bs}: {d:e}");
    }
}
