//! Property tests of the fusion runtime: for random meshes and random
//! loop chains drawn from a small vocabulary of integer-valued kernels,
//! fused execution must **bit-match** (`max_abs_diff == 0`) the plain
//! sequential loop-by-loop reference in both execution shapes — integer
//! arithmetic in f64 is exact, so any reordering bug, dropped loop, or
//! illegal fusion shows up as a hard mismatch, not a tolerance question.

use proptest::prelude::*;
use ump_core::{apply_edge_inc, Access, ArgInfo, ExecPool, LoopProfile, PlanCache, SharedDat};
use ump_lazy::{Chain, LoopDesc, Shape};
use ump_mesh::generators::perturbed_quads;
use ump_mesh::Mesh2d;

/// The loop vocabulary chains are drawn from. All bodies are
/// integer-valued so f64 execution is exact in any order the legality
/// rules permit.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// edges, direct: `a[e] += e % 5 + 1`
    FillA,
    /// edges, direct RAW on `a`: `b[e] += 2·a[e]`
    CombineB,
    /// edges, indirect increment: `acc[c0] += a[e]; acc[c1] -= 2`
    Scatter,
    /// edges, indirect read of `acc` (splits after Scatter):
    /// `b[e] += acc[c0] − acc[c1]`
    Gather,
    /// cells, direct (different set, always splits): `acc[c] += 3`
    CellStep,
}

impl Kind {
    fn from_index(i: usize) -> Kind {
        match i % 5 {
            0 => Kind::FillA,
            1 => Kind::CombineB,
            2 => Kind::Scatter,
            3 => Kind::Gather,
            _ => Kind::CellStep,
        }
    }

    fn desc(self, ne: usize, nc: usize) -> LoopDesc {
        let (name, set, n, args) = match self {
            Kind::FillA => (
                "fill_a",
                "edges",
                ne,
                vec![ArgInfo::direct("a", 1, Access::Inc)],
            ),
            Kind::CombineB => (
                "combine_b",
                "edges",
                ne,
                vec![
                    ArgInfo::direct("a", 1, Access::Read),
                    ArgInfo::direct("b", 1, Access::Inc),
                ],
            ),
            Kind::Scatter => (
                "scatter",
                "edges",
                ne,
                vec![
                    ArgInfo::direct("a", 1, Access::Read),
                    ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0),
                    ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 1),
                ],
            ),
            Kind::Gather => (
                "gather",
                "edges",
                ne,
                vec![
                    ArgInfo::indirect("acc", 1, Access::Read, "edge2cell", 0),
                    ArgInfo::indirect("acc", 1, Access::Read, "edge2cell", 1),
                    ArgInfo::direct("b", 1, Access::Inc),
                ],
            ),
            Kind::CellStep => (
                "cell_step",
                "cells",
                nc,
                vec![ArgInfo::direct("acc", 1, Access::Inc)],
            ),
        };
        LoopDesc::new(
            LoopProfile {
                name: name.into(),
                set: set.into(),
                args,
                flops_per_elem: 1.0,
                transcendentals_per_elem: 0.0,
                description: String::new(),
            },
            n,
        )
    }
}

struct State {
    a: Vec<f64>,
    b: Vec<f64>,
    acc: Vec<f64>,
}

impl State {
    fn new(mesh: &Mesh2d) -> State {
        State {
            a: vec![0.0; mesh.n_edges()],
            b: vec![0.0; mesh.n_edges()],
            acc: vec![0.0; mesh.n_cells()],
        }
    }
}

/// Plain loop-by-loop sequential reference.
fn run_reference(mesh: &Mesh2d, kinds: &[Kind], s: &mut State) {
    for k in kinds {
        match k {
            Kind::FillA => {
                for e in 0..mesh.n_edges() {
                    s.a[e] += (e % 5 + 1) as f64;
                }
            }
            Kind::CombineB => {
                for e in 0..mesh.n_edges() {
                    s.b[e] += 2.0 * s.a[e];
                }
            }
            Kind::Scatter => {
                for e in 0..mesh.n_edges() {
                    let c = mesh.edge2cell.row(e);
                    s.acc[c[0] as usize] += s.a[e];
                    s.acc[c[1] as usize] -= 2.0;
                }
            }
            Kind::Gather => {
                for e in 0..mesh.n_edges() {
                    let c = mesh.edge2cell.row(e);
                    s.b[e] += s.acc[c[0] as usize] - s.acc[c[1] as usize];
                }
            }
            Kind::CellStep => {
                for c in 0..mesh.n_cells() {
                    s.acc[c] += 3.0;
                }
            }
        }
    }
}

/// Record the same chain and execute it fused.
fn run_fused(
    mesh: &Mesh2d,
    kinds: &[Kind],
    s: &mut State,
    shape: Shape,
    block_size: usize,
) -> ump_lazy::ChainReport {
    let (ne, nc) = (mesh.n_edges(), mesh.n_cells());
    let pool = ExecPool::new(3);
    let cache = PlanCache::new();
    let av = SharedDat::new(&mut s.a);
    let bv = SharedDat::new(&mut s.b);
    let accv = SharedDat::new(&mut s.acc);
    let mut chain = Chain::new("prop");
    for k in kinds {
        match k {
            Kind::FillA => {
                let av = &av;
                chain.record(k.desc(ne, nc), vec![], move |e| unsafe {
                    av.slice_mut(e, 1)[0] += (e % 5 + 1) as f64;
                });
            }
            Kind::CombineB => {
                let (av, bv) = (&av, &bv);
                chain.record(k.desc(ne, nc), vec![], move |e| unsafe {
                    bv.slice_mut(e, 1)[0] += 2.0 * av.slice(e, 1)[0];
                });
            }
            Kind::Scatter => {
                let (av, accv) = (&av, &accv);
                chain.record_two_phase(
                    k.desc(ne, nc),
                    vec![&mesh.edge2cell],
                    move |e| {
                        let c = mesh.edge2cell.row(e);
                        let v = unsafe { av.slice(e, 1)[0] };
                        (c[0] as usize, [v], c[1] as usize, [-2.0])
                    },
                    move |_e, inc| unsafe { apply_edge_inc(accv, inc) },
                );
            }
            Kind::Gather => {
                let (bv, accv) = (&bv, &accv);
                chain.record(k.desc(ne, nc), vec![], move |e| {
                    let c = mesh.edge2cell.row(e);
                    unsafe {
                        bv.slice_mut(e, 1)[0] +=
                            accv.slice(c[0] as usize, 1)[0] - accv.slice(c[1] as usize, 1)[0];
                    }
                });
            }
            Kind::CellStep => {
                let accv = &accv;
                chain.record(k.desc(ne, nc), vec![], move |c| unsafe {
                    accv.slice_mut(c, 1)[0] += 3.0;
                });
            }
        }
    }
    chain.execute(&pool, &cache, shape, 0, block_size, 8, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Fused execution of a random legal chain on a random perturbed
    // mesh bit-matches the sequential reference — threaded and SIMT
    // shapes alike — and never issues more rounds than loop-by-loop
    // execution would.
    #[test]
    fn fused_chain_bit_matches_sequential(
        nx in 3usize..12,
        ny in 3usize..10,
        seed in any::<u64>(),
        kind_ids in prop::collection::vec(0usize..5, 1..9),
        bs_sel in 0usize..3,
    ) {
        let mesh = perturbed_quads(nx, ny, 0.25, seed);
        let kinds: Vec<Kind> = kind_ids.iter().map(|&i| Kind::from_index(i)).collect();
        let block_size = [5usize, 16, 64][bs_sel];

        let mut reference = State::new(&mesh);
        run_reference(&mesh, &kinds, &mut reference);

        for shape in [Shape::Threaded, Shape::Simt { width: 4, sched_overhead_ns: 0 }] {
            let mut fused = State::new(&mesh);
            let report = run_fused(&mesh, &kinds, &mut fused, shape, block_size);
            prop_assert_eq!(&fused.a, &reference.a, "a diverged ({:?}, {:?})", shape, kinds);
            prop_assert_eq!(&fused.b, &reference.b, "b diverged ({:?}, {:?})", shape, kinds);
            prop_assert_eq!(&fused.acc, &reference.acc, "acc diverged ({:?}, {:?})", shape, kinds);
            prop_assert!(report.fused_rounds <= report.unfused_rounds);
            prop_assert!(report.groups <= report.loops);
        }
    }

    // The canonical illegal fusion — an indirect read directly after an
    // indirect increment through the shared map — is split into two
    // groups, and still computes the exact sequential result.
    #[test]
    fn illegal_indirect_raw_is_split_and_correct(
        nx in 3usize..10,
        ny in 3usize..8,
        seed in any::<u64>(),
    ) {
        let mesh = perturbed_quads(nx, ny, 0.2, seed);
        let kinds = [Kind::FillA, Kind::Scatter, Kind::Gather];

        // the fused partition must split exactly between Scatter (inc
        // through edge2cell) and Gather (read through edge2cell)
        let (ne, nc) = (mesh.n_edges(), mesh.n_cells());
        let entries: Vec<LoopDesc> = kinds.iter().map(|k| k.desc(ne, nc)).collect();
        let refs: Vec<(&LoopDesc, bool)> = entries.iter().map(|d| (d, false)).collect();
        let groups = ump_lazy::fuse_groups(&refs);
        prop_assert_eq!(groups.len(), 2, "expected split: {:?}", groups);
        prop_assert_eq!(groups[0].loops.clone(), 0..2);
        prop_assert_eq!(groups[1].loops.clone(), 2..3);
        prop_assert!(
            ump_lazy::conflict(&entries[1], &entries[2]).is_some(),
            "indirect RAW must conflict"
        );

        let mut reference = State::new(&mesh);
        run_reference(&mesh, &kinds, &mut reference);
        let mut fused = State::new(&mesh);
        run_fused(&mesh, &kinds, &mut fused, Shape::Threaded, 16);
        prop_assert_eq!(&fused.b, &reference.b);
        prop_assert_eq!(&fused.acc, &reference.acc);
    }
}
