//! Integration: every Airfoil backend must compute the same physics as
//! the sequential reference, and the physics itself must be stable
//! (finite, residual-decreasing after the initial transient) — the
//! correctness bar behind every performance number in the paper.

use ump_apps::airfoil::{drivers, mpi, Airfoil};
use ump_core::{OpDat, PlanCache, Scheme};

const NX: usize = 24;
const NY: usize = 16;
const ITERS: usize = 5;

fn reference() -> (Airfoil<f64>, Vec<f64>) {
    let mut sim = Airfoil::<f64>::new(NX, NY);
    let hist: Vec<f64> = (0..ITERS)
        .map(|_| drivers::step_seq(&mut sim, None))
        .collect();
    (sim, hist)
}

fn assert_q_close(a: &OpDat<f64>, b: &OpDat<f64>, tol: f64, what: &str) {
    let d = a.max_abs_diff(b);
    assert!(d <= tol, "{what}: max |Δq| = {d:e} > {tol:e}");
}

#[test]
fn sequential_physics_is_stable_and_convergent() {
    let mut sim = Airfoil::<f64>::new(32, 20);
    let mut hist = Vec::new();
    for _ in 0..60 {
        hist.push(drivers::step_seq(&mut sim, None));
    }
    assert!(sim.q.all_finite(), "NaN/Inf in flow state");
    assert!(hist.iter().all(|r| r.is_finite() && *r >= 0.0));
    // residual decays from the initial impulsive start
    let early: f64 = hist[..10].iter().sum();
    let late: f64 = hist[50..].iter().sum();
    assert!(
        late < early * 0.5,
        "residual should decay: early {early:e}, late {late:e}"
    );
}

#[test]
fn threaded_matches_sequential() {
    let (ref_sim, ref_hist) = reference();
    let mut sim = Airfoil::<f64>::new(NX, NY);
    let cache = PlanCache::new();
    for (i, &r) in ref_hist.iter().enumerate() {
        let rms = drivers::step_threaded(&mut sim, &cache, 4, 32, None);
        assert!((rms - r).abs() < 1e-10 * (1.0 + r), "iter {i}");
    }
    assert_q_close(&sim.q, &ref_sim.q, 1e-11, "threaded");
}

#[test]
fn simd_matches_sequential() {
    let (ref_sim, ref_hist) = reference();
    let mut sim = Airfoil::<f64>::new(NX, NY);
    for (i, &r) in ref_hist.iter().enumerate() {
        let rms = drivers::step_simd::<f64, 4>(&mut sim, None);
        assert!((rms - r).abs() < 1e-10 * (1.0 + r), "iter {i}");
    }
    assert_q_close(&sim.q, &ref_sim.q, 1e-11, "simd L=4");
}

#[test]
fn simd_lane_width_is_semantically_transparent() {
    // AVX shape vs AVX-512 shape must agree (bar reassociation in rms)
    let mut a = Airfoil::<f64>::new(NX, NY);
    let mut b = Airfoil::<f64>::new(NX, NY);
    for _ in 0..ITERS {
        drivers::step_simd::<f64, 4>(&mut a, None);
        drivers::step_simd::<f64, 8>(&mut b, None);
    }
    assert_q_close(&a.q, &b.q, 1e-11, "L=4 vs L=8");
}

#[test]
fn simd_threaded_matches_sequential() {
    let (ref_sim, _) = reference();
    let mut sim = Airfoil::<f64>::new(NX, NY);
    let cache = PlanCache::new();
    for _ in 0..ITERS {
        drivers::step_simd_threaded::<f64, 4>(&mut sim, &cache, 4, 32, None);
    }
    assert_q_close(&sim.q, &ref_sim.q, 1e-11, "simd+threads");
}

#[test]
fn simt_emulation_matches_sequential() {
    let (ref_sim, _) = reference();
    let mut sim = Airfoil::<f64>::new(NX, NY);
    let cache = PlanCache::new();
    for _ in 0..ITERS {
        drivers::step_simt(&mut sim, &cache, 2, 8, 0, 32, None);
    }
    assert_q_close(&sim.q, &ref_sim.q, 1e-11, "simt");
}

#[test]
fn permute_schemes_match_sequential() {
    let (ref_sim, _) = reference();
    for scheme in [Scheme::TwoLevel, Scheme::FullPermute, Scheme::BlockPermute] {
        let mut sim = Airfoil::<f64>::new(NX, NY);
        let cache = PlanCache::new();
        for _ in 0..ITERS {
            drivers::step_simd_scheme::<f64, 4>(&mut sim, &cache, scheme, 64, None);
        }
        assert_q_close(&sim.q, &ref_sim.q, 1e-11, &format!("{scheme:?}"));
    }
}

#[test]
fn mpi_backend_matches_sequential() {
    let (ref_sim, ref_hist) = reference();
    let case = ref_sim.case.clone();
    for ranks in [2usize, 3, 4] {
        let (q, hist) = mpi::run_mpi::<f64>(&case, ranks, ITERS, None);
        assert_q_close(&q, &ref_sim.q, 1e-11, &format!("mpi ranks={ranks}"));
        for (i, (&a, &b)) in hist.iter().zip(&ref_hist).enumerate() {
            assert!(
                (a - b).abs() < 1e-10 * (1.0 + b),
                "rms history diverges at iter {i}: {a} vs {b} (ranks {ranks})"
            );
        }
    }
}

#[test]
fn hybrid_ranks_threads_simd_matches_sequential() {
    // the paper's winning Phi configuration: MPI ranks × OpenMP threads
    // × vector intrinsics, all at once
    let (ref_sim, ref_hist) = reference();
    let (q, hist) = mpi::run_mpi_hybrid::<f64, 4>(&ref_sim.case, 2, 2, 64, ITERS);
    assert_q_close(
        &q,
        &ref_sim.q,
        1e-11,
        "hybrid 2 ranks x 2 threads x 4 lanes",
    );
    for (i, (&a, &b)) in hist.iter().zip(&ref_hist).enumerate() {
        assert!((a - b).abs() < 1e-10 * (1.0 + b), "iter {i}: {a} vs {b}");
    }
}

#[test]
fn single_precision_tracks_double_precision() {
    let mut dp = Airfoil::<f64>::new(NX, NY);
    let mut sp = Airfoil::<f32>::new(NX, NY);
    let mut last = (0.0, 0.0);
    for _ in 0..ITERS {
        last = (
            drivers::step_seq(&mut dp, None),
            drivers::step_seq(&mut sp, None),
        );
    }
    assert!(sp.q.all_finite());
    let rel = (last.0 - last.1).abs() / last.0.max(1e-30);
    assert!(
        rel < 1e-3,
        "SP rms {} vs DP rms {} (rel {rel})",
        last.1,
        last.0
    );
}

#[test]
fn simd_single_precision_matches_scalar_single_precision() {
    let mut a = Airfoil::<f32>::new(NX, NY);
    let mut b = Airfoil::<f32>::new(NX, NY);
    for _ in 0..ITERS {
        drivers::step_seq(&mut a, None);
        drivers::step_simd::<f32, 8>(&mut b, None);
    }
    let d = a.q.max_abs_diff(&b.q);
    assert!(d < 1e-3, "f32 simd diverged from f32 scalar: {d}");
}
